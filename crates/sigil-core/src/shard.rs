//! Sharded shadow-memory replay: parallel per-byte classification with
//! serial semantics.
//!
//! The paper's Table-I classification is **per-byte state**: every shadow
//! object evolves only through the ordered sequence of accesses touching
//! *its own address*. Partitioning the address space by 4 KiB chunk
//! (`sigil_mem::chunk_key(addr) % shards`) therefore splits the access
//! stream into `N` independent sub-streams whose per-byte state machines
//! never interact — the replay is order-independent *across* shards as
//! long as each shard sees *its* accesses in program order.
//!
//! Three pieces of state are **not** per-byte and stay on the dispatch
//! thread:
//!
//! * **Global order** — call numbers, timestamps, and the calltree cursor
//!   advance once per event; the dispatcher resolves them and carries the
//!   results (`ctx`, `call`, `reader_fn`, `at`) inside each
//!   [`AccessRecord`], so workers never consult shared state.
//! * **Residency** — chunk eviction is a *global* decision (the limit
//!   spans the whole table, FIFO/LRU order interleaves all chunks). The
//!   dispatcher runs a zero-sized residency oracle (`ShadowTable<()>`)
//!   through the identical run sequence; its logged victims are mirrored
//!   to the owning shard (`ShadowTable::evict_key`) *between* the same
//!   runs as in serial replay, so per-shard tables reproduce the serial
//!   residency — and the oracle's counters reproduce the serial
//!   [`MemoryStats`] exactly.
//! * **Event order** — the event file is globally ordered. The dispatcher
//!   keeps a compact [`SeqOp`] log; workers return per-access transfer
//!   segments; [`sequence_events`] replays the log with simulated frame
//!   stacks, splicing the segments back in access order with the same
//!   `push_compute`/`push_transfer` coalescing as the serial emitter, so
//!   the reconstructed file is byte-identical.
//!
//! Everything a worker *does* produce (communication tallies, edges,
//! reuse aggregates) is a sum over disjoint byte sets, so per-shard
//! fragments merge through the commutative [`ShardFragment::merge`]
//! layer in any order with an identical result — a property pinned by
//! the `shard_merge` proptests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use sigil_callgrind::{CallTree, ContextId};
use sigil_mem::{chunk_key, MemoryStats, Owner, ShadowObject, ShadowTable};
use sigil_trace::{Addr, CallNumber, FunctionId, Timestamp};

use crate::config::SigilConfig;
use crate::events_out::EventFile;
use crate::phase::{PhaseBuilder, PhaseProfile};
use crate::profiler::{EdgeAccum, SigilProfiler};
use crate::reuse::ContextReuse;
use crate::stats::{CommEdge, CommStats};

/// Messages per batch before a channel send.
const BATCH: usize = 256;
/// Batches in flight per worker before the dispatcher blocks
/// (backpressure when workers outnumber cores).
const CHANNEL_DEPTH: usize = 8;

/// Transfer segments produced by one access, keyed by global access
/// index: `(part, [(producer_call, bytes)])` per chunk run that found
/// cross-call dependencies.
pub(crate) type TransferMap = HashMap<u64, Vec<(u32, Vec<(CallNumber, u64)>)>>;

/// One shadow access run, pre-resolved on the dispatch thread.
///
/// `addr..addr+len` never crosses a chunk boundary (the dispatcher
/// splits at the residency oracle's runs), so a worker applies it with a
/// single `run_mut`.
#[derive(Debug, Clone, Copy)]
struct AccessRecord {
    /// Global access index (one per `Read`/`Write` event, shared by all
    /// parts of a straddling access) — sequences transfers back into
    /// program order.
    idx: u64,
    /// Run index within the access, in byte order.
    part: u32,
    write: bool,
    addr: Addr,
    len: u32,
    /// The consuming/producing frame's context.
    ctx: ContextId,
    /// Its dynamic call number.
    call: CallNumber,
    /// The reader's function identity (reads only).
    reader_fn: Option<FunctionId>,
    /// Op-clock timestamp of the access.
    at: Timestamp,
    /// Phase-clock timestamp of the access (post-tick — includes the
    /// access's own retired op), for phase-profile transfer bucketing.
    phase_at: u64,
}

enum ShardMsg {
    /// Defines the next context id's function (contexts broadcast in id
    /// order, so the id is implicit).
    CtxDef {
        func: Option<FunctionId>,
    },
    Access(AccessRecord),
    /// Mirror of a residency-oracle eviction owned by this shard.
    Evict {
        key: u64,
    },
}

/// Globally-ordered event-file operations logged by the dispatcher
/// (events mode only) and replayed by [`sequence_events`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum SeqOp {
    /// A dynamic call was entered (parent comes from the simulated
    /// stack).
    Call { call: CallNumber, ctx: ContextId },
    /// The current frame returned.
    Return,
    /// Flush the current frame's pending ops (thread switch boundary).
    Flush,
    /// Make `thread` current (no flush — `on_finish` drains residual
    /// frames without one, exactly like the serial path).
    Switch { thread: u32 },
    /// `count` retired ops charged to the current frame.
    Ops { count: u64 },
    /// A read access; its transfer segments (if any) are looked up by
    /// index.
    Read { idx: u64 },
}

/// What one worker hands back at join time.
pub(crate) struct ShardResult {
    pub(crate) comm: Vec<CommStats>,
    pub(crate) edges: HashMap<(ContextId, ContextId), EdgeAccum>,
    pub(crate) reuse: Option<Vec<ContextReuse>>,
    pub(crate) transfers: TransferMap,
    /// Phase-profile transfer buckets for this shard's bytes (phase
    /// collection only).
    pub(crate) phases: Option<PhaseBuilder>,
    /// The worker table's own counters — observability only; the
    /// authoritative [`MemoryStats`] comes from the dispatch oracle.
    pub(crate) stats: MemoryStats,
    pub(crate) evictions_applied: u64,
    /// Nanoseconds this worker spent applying batches (telemetry).
    pub(crate) busy_ns: u64,
    /// Nanoseconds this worker spent blocked on its channel (telemetry).
    pub(crate) idle_ns: u64,
}

/// One shard's (or the dispatch thread's) contribution to a profile:
/// the commutative merge layer.
///
/// `comm` and `reuse` are indexed by raw context id; `edges` is sorted
/// by `(producer, consumer)`; `phases` folds cell-wise through
/// [`PhaseProfile::merge`]; `memory` sums component-wise. All five
/// merges are commutative and associative, so fragments fold in any
/// permutation to an identical result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardFragment {
    /// Per-context communication tallies (index = raw context id).
    pub comm: Vec<CommStats>,
    /// Producer→consumer edges, sorted by `(producer, consumer)`.
    pub edges: Vec<CommEdge>,
    /// Per-context reuse aggregates (reuse mode only).
    pub reuse: Option<Vec<ContextReuse>>,
    /// Phase-sliced profile slice (phase collection only).
    pub phases: Option<PhaseProfile>,
    /// Shadow-footprint counters.
    pub memory: MemoryStats,
}

impl ShardFragment {
    /// Folds `other` into `self` component-wise; see the type docs for
    /// the algebra.
    pub fn merge(&mut self, other: &ShardFragment) {
        if other.comm.len() > self.comm.len() {
            self.comm.resize(other.comm.len(), CommStats::default());
        }
        for (into, from) in self.comm.iter_mut().zip(&other.comm) {
            into.merge(from);
        }

        if !other.edges.is_empty() {
            let mut map: std::collections::BTreeMap<(ContextId, ContextId), (u64, u64)> =
                std::collections::BTreeMap::new();
            for edge in self.edges.iter().chain(&other.edges) {
                let entry = map.entry((edge.producer, edge.consumer)).or_default();
                entry.0 += edge.unique_bytes;
                entry.1 += edge.nonunique_bytes;
            }
            self.edges = map
                .into_iter()
                .map(|((producer, consumer), (unique, nonunique))| CommEdge {
                    producer,
                    consumer,
                    unique_bytes: unique,
                    nonunique_bytes: nonunique,
                })
                .collect();
        }

        if let Some(from) = &other.reuse {
            let into = self.reuse.get_or_insert_with(Vec::new);
            while into.len() < from.len() {
                let next = ContextId(u32::try_from(into.len()).expect("context count fits u32"));
                into.push(ContextReuse::new(next));
            }
            for (row, other_row) in into.iter_mut().zip(from) {
                row.merge(other_row);
            }
        }

        if let Some(from) = &other.phases {
            match self.phases.as_mut() {
                Some(into) => into.merge(from),
                None => self.phases = Some(from.clone()),
            }
        }

        self.memory = self.memory.combined(other.memory);
    }
}

/// Folds an iterator of fragments into one (order-insensitive).
pub fn merge_fragments(frags: impl IntoIterator<Item = ShardFragment>) -> ShardFragment {
    let mut merged = ShardFragment::default();
    for frag in frags {
        merged.merge(&frag);
    }
    merged
}

impl ShardResult {
    pub(crate) fn into_fragment(self) -> (ShardFragment, TransferMap) {
        let mut edges: Vec<CommEdge> = self
            .edges
            .into_iter()
            .map(|((producer, consumer), accum)| CommEdge {
                producer,
                consumer,
                unique_bytes: accum.unique,
                nonunique_bytes: accum.nonunique,
            })
            .collect();
        edges.sort_by_key(|e| (e.producer, e.consumer));
        (
            ShardFragment {
                comm: self.comm,
                edges,
                reuse: self.reuse,
                phases: self.phases.map(PhaseBuilder::finish),
                memory: MemoryStats::default(),
            },
            self.transfers,
        )
    }
}

/// The dispatch-side engine owned by a sharded [`SigilProfiler`].
pub(crate) struct ShardEngine {
    shards: usize,
    /// Zero-sized residency oracle: replays the exact serial run
    /// sequence, so its counters and its eviction log *are* the serial
    /// table's.
    oracle: ShadowTable<()>,
    senders: Vec<SyncSender<Vec<ShardMsg>>>,
    batches: Vec<Vec<ShardMsg>>,
    handles: Vec<JoinHandle<ShardResult>>,
    /// Contexts broadcast so far (defs are sent in id order).
    synced_ctxs: usize,
    next_idx: u64,
    events_on: bool,
    seq: Vec<SeqOp>,
    scratch_evictions: Vec<u64>,
    /// Telemetry (obs-enabled runs only): batches sent per shard, and
    /// the workers' shared drain counters — their difference is the
    /// channel depth sampled into the timeseries at each flush.
    obs_on: bool,
    sent_batches: Vec<u64>,
    received_batches: Vec<Arc<AtomicU64>>,
}

impl std::fmt::Debug for ShardEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardEngine")
            .field("shards", &self.shards)
            .field("synced_ctxs", &self.synced_ctxs)
            .field("dispatched_accesses", &self.next_idx)
            .finish_non_exhaustive()
    }
}

impl ShardEngine {
    pub(crate) fn new(config: &SigilConfig) -> Self {
        let shards = config.shards.max(2);
        let mut oracle = match config.shadow_chunk_limit {
            Some(limit) => ShadowTable::with_chunk_limit(limit, config.eviction),
            None => ShadowTable::new(),
        };
        oracle.enable_eviction_log();
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let mut received_batches = Vec::with_capacity(shards);
        let (reuse_mode, events_on) = (config.reuse_mode, config.record_events);
        let phase_bucket_ops = config.phase_bucket_ops;
        for shard in 0..shards {
            let (tx, rx) = sync_channel::<Vec<ShardMsg>>(CHANNEL_DEPTH);
            senders.push(tx);
            let received = Arc::new(AtomicU64::new(0));
            received_batches.push(Arc::clone(&received));
            let spec = WorkerSpec {
                shard,
                reuse_mode,
                events_on,
                phase_bucket_ops,
                batches_received: received,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("sigil-shard-{shard}"))
                    .spawn(move || shard_worker(spec, rx))
                    .expect("spawn shard worker"),
            );
        }
        ShardEngine {
            shards,
            oracle,
            senders,
            batches: (0..shards).map(|_| Vec::with_capacity(BATCH)).collect(),
            handles,
            synced_ctxs: 0,
            next_idx: 0,
            events_on,
            seq: Vec::new(),
            scratch_evictions: Vec::new(),
            obs_on: sigil_obs::is_enabled(),
            sent_batches: vec![0; shards],
            received_batches,
        }
    }

    /// Number of worker shards.
    pub(crate) fn shard_count(&self) -> usize {
        self.shards
    }

    fn shard_of(&self, key: u64) -> usize {
        (key % self.shards as u64) as usize
    }

    fn push_msg(&mut self, shard: usize, msg: ShardMsg) {
        let batch = &mut self.batches[shard];
        batch.push(msg);
        if batch.len() >= BATCH {
            self.flush_batch(shard);
        }
    }

    fn flush_batch(&mut self, shard: usize) {
        if self.batches[shard].is_empty() {
            return;
        }
        let batch = std::mem::replace(&mut self.batches[shard], Vec::with_capacity(BATCH));
        // A send error means the worker died; its join below will
        // surface the panic, so don't double-panic here.
        let _ = self.senders[shard].send(batch);
        if self.obs_on {
            self.sent_batches[shard] += 1;
            self.sample_depths(shard);
        }
    }

    /// Samples the flushed shard's channel depth and the whole
    /// pipeline's dispatch backlog (batches sent but not yet drained)
    /// into the timeseries store.
    fn sample_depths(&self, shard: usize) {
        let drained = self.received_batches[shard].load(Ordering::Relaxed);
        let depth = self.sent_batches[shard].saturating_sub(drained);
        sigil_obs::timeseries::record_gauge(&format!("shard.{shard}.depth"), depth as f64);
        let sent: u64 = self.sent_batches.iter().sum();
        let received: u64 = self
            .received_batches
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        sigil_obs::timeseries::record_gauge(
            "shard.dispatch_backlog",
            sent.saturating_sub(received) as f64,
        );
        sigil_obs::timeseries::record_counter("shard.batches_sent", 1);
    }

    /// Broadcasts any calltree contexts created since the last sync, so
    /// workers can resolve producer functions from local state.
    pub(crate) fn sync_ctxs(&mut self, tree: &CallTree) {
        while self.synced_ctxs < tree.len() {
            let ctx = ContextId(u32::try_from(self.synced_ctxs).expect("context count fits u32"));
            let func = tree.node(ctx).func;
            for shard in 0..self.shards {
                self.push_msg(shard, ShardMsg::CtxDef { func });
            }
            self.synced_ctxs += 1;
        }
    }

    pub(crate) fn log_call(&mut self, call: CallNumber, ctx: ContextId) {
        if self.events_on {
            self.seq.push(SeqOp::Call { call, ctx });
        }
    }

    pub(crate) fn log_return(&mut self) {
        if self.events_on {
            self.seq.push(SeqOp::Return);
        }
    }

    /// A thread switch during the run: flush, then switch (serial
    /// `ThreadSwitch` semantics).
    pub(crate) fn log_switch(&mut self, thread: u32) {
        if self.events_on {
            self.seq.push(SeqOp::Flush);
            self.seq.push(SeqOp::Switch { thread });
        }
    }

    /// A thread resumed by `on_finish` frame draining: switch without a
    /// flush (the serial path sets `current_thread` directly).
    pub(crate) fn log_resume(&mut self, thread: u32) {
        if self.events_on {
            self.seq.push(SeqOp::Switch { thread });
        }
    }

    pub(crate) fn log_ops(&mut self, count: u64) {
        if !self.events_on || count == 0 {
            return;
        }
        // Runs of compute coalesce; reads/calls/switches break the run.
        if let Some(SeqOp::Ops { count: last }) = self.seq.last_mut() {
            *last += count;
        } else {
            self.seq.push(SeqOp::Ops { count });
        }
    }

    /// Routes one shadow access: the oracle splits it into chunk runs
    /// and decides evictions; each run (preceded by any evictions it
    /// triggered) goes to the owning shard.
    #[allow(clippy::too_many_arguments)] // the flattened AccessRecord fields
    pub(crate) fn dispatch_access(
        &mut self,
        write: bool,
        addr: Addr,
        len: usize,
        ctx: ContextId,
        call: CallNumber,
        reader_fn: Option<FunctionId>,
        at: Timestamp,
        phase_at: u64,
    ) {
        let idx = self.next_idx;
        self.next_idx += 1;
        if !write && self.events_on {
            self.seq.push(SeqOp::Read { idx });
        }
        let mut part = 0u32;
        let mut addr = addr;
        let mut remaining = len;
        while remaining > 0 {
            let (_, consumed) = self.oracle.run_mut(addr, remaining);
            // Mirror this run's evictions *before* the run itself: per
            // victim chunk the eviction follows all its prior accesses
            // (dispatch order) and precedes any re-creation.
            if !self.oracle.evictions().is_empty() {
                self.scratch_evictions.clear();
                self.scratch_evictions
                    .extend_from_slice(self.oracle.evictions());
                self.oracle.clear_evictions();
                for i in 0..self.scratch_evictions.len() {
                    let key = self.scratch_evictions[i];
                    self.push_msg(self.shard_of(key), ShardMsg::Evict { key });
                }
            }
            let key = chunk_key(addr);
            self.push_msg(
                self.shard_of(key),
                ShardMsg::Access(AccessRecord {
                    idx,
                    part,
                    write,
                    addr,
                    len: u32::try_from(consumed).expect("run fits a chunk"),
                    ctx,
                    call,
                    reader_fn,
                    at,
                    phase_at,
                }),
            );
            part += 1;
            addr = addr.wrapping_add(consumed as u64);
            remaining -= consumed;
        }
    }

    /// The serial-equivalent shadow counters, from the residency oracle
    /// (whose `T = ()` stores no bytes — residency is re-priced at the
    /// serial table's slot size).
    pub(crate) fn memory_stats(&self) -> MemoryStats {
        let mut stats = self.oracle.stats();
        stats.resident_bytes = stats.resident_slots * std::mem::size_of::<ShadowObject>() as u64;
        stats
    }

    /// Flushes outstanding batches, closes the channels, and joins the
    /// workers.
    pub(crate) fn finish(mut self) -> (Vec<ShardResult>, Vec<SeqOp>) {
        for shard in 0..self.shards {
            self.flush_batch(shard);
        }
        self.senders.clear();
        let results = self
            .handles
            .drain(..)
            .map(|handle| handle.join().expect("shard worker panicked"))
            .collect();
        (results, std::mem::take(&mut self.seq))
    }
}

/// Per-worker launch parameters.
struct WorkerSpec {
    shard: usize,
    reuse_mode: bool,
    events_on: bool,
    /// Phase-profile bucket width; `Some` turns on transfer bucketing.
    phase_bucket_ops: Option<u64>,
    /// Telemetry: batches this worker has drained, shared with the
    /// dispatcher's channel-depth sampling.
    batches_received: Arc<AtomicU64>,
}

/// Per-worker replay state.
struct WorkerState {
    table: ShadowTable<ShadowObject>,
    comm: Vec<CommStats>,
    edges: HashMap<(ContextId, ContextId), EdgeAccum>,
    reuse: Option<Vec<ContextReuse>>,
    /// Context → function map, filled by `CtxDef` broadcasts.
    ctx_funcs: Vec<Option<FunctionId>>,
    transfers: TransferMap,
    phases: Option<PhaseBuilder>,
    events_on: bool,
    evictions_applied: u64,
}

fn shard_worker(spec: WorkerSpec, rx: Receiver<Vec<ShardMsg>>) -> ShardResult {
    let _span = sigil_obs::span_with(|| format!("shard-worker-{}", spec.shard));
    let mut state = WorkerState {
        table: ShadowTable::new(),
        comm: Vec::new(),
        edges: HashMap::new(),
        reuse: spec.reuse_mode.then(Vec::new),
        ctx_funcs: Vec::new(),
        transfers: TransferMap::new(),
        phases: spec.phase_bucket_ops.map(PhaseBuilder::new),
        events_on: spec.events_on,
        evictions_applied: 0,
    };
    let mut busy_ns = 0u64;
    let mut idle_ns = 0u64;
    loop {
        let wait = Instant::now();
        let Ok(batch) = rx.recv() else { break };
        idle_ns += u64::try_from(wait.elapsed().as_nanos()).unwrap_or(u64::MAX);
        spec.batches_received.fetch_add(1, Ordering::Relaxed);
        let work = Instant::now();
        for msg in batch {
            match msg {
                ShardMsg::CtxDef { func } => state.ctx_funcs.push(func),
                ShardMsg::Evict { key } => {
                    let evicted = state.table.evict_key(key);
                    debug_assert!(evicted, "mirrored victim must be resident");
                    state.evictions_applied += u64::from(evicted);
                }
                ShardMsg::Access(rec) if rec.write => apply_write(&mut state, rec),
                ShardMsg::Access(rec) => apply_read(&mut state, rec),
            }
        }
        busy_ns += u64::try_from(work.elapsed().as_nanos()).unwrap_or(u64::MAX);
    }
    // Flush outstanding reuse records (bytes still "live" at exit) —
    // the shard owns exactly its bytes, so the union over shards equals
    // the serial table walk.
    if let Some(reuse_vec) = state.reuse.as_mut() {
        for (_, obj) in state.table.iter() {
            if let Some(reader) = obj.last_reader {
                SigilProfiler::reuse_flush(reuse_vec, reader, obj.reuse);
            }
        }
    }
    ShardResult {
        stats: state.table.stats(),
        comm: state.comm,
        edges: state.edges,
        reuse: state.reuse,
        transfers: state.transfers,
        phases: state.phases,
        evictions_applied: state.evictions_applied,
        busy_ns,
        idle_ns,
    }
}

/// One read run: the serial `handle_read` per-byte loop, with producer
/// functions resolved from the broadcast context map.
fn apply_read(state: &mut WorkerState, rec: AccessRecord) {
    let owner = Owner::new(rec.ctx.0, rec.call);
    let mut local_unique = 0u64;
    let mut local_nonunique = 0u64;
    let mut input_unique = 0u64;
    let mut input_nonunique = 0u64;
    let mut producer_seg: Option<(ContextId, EdgeAccum)> = None;
    let mut producer_fn_memo: Option<(ContextId, Option<FunctionId>)> = None;
    let mut transfers: Vec<(CallNumber, u64)> = Vec::new();
    let events_on = state.events_on;
    // Phase-profile transfer segments, mirroring the serial path's
    // producer-context accumulation (see `SigilProfiler::handle_read`).
    let mut phase_transfers: Vec<(ContextId, u64)> = Vec::new();
    let phases_on = state.phases.is_some();

    let (slots, consumed) = state.table.run_mut(rec.addr, rec.len as usize);
    debug_assert_eq!(consumed, rec.len as usize, "records never straddle chunks");
    for obj in slots {
        let repeat = obj.is_repeat_read(owner);
        let producer = obj.last_writer;

        if let Some(reuse_vec) = state.reuse.as_mut() {
            if !repeat {
                if let Some(prev_reader) = obj.last_reader {
                    let info = obj.reuse;
                    SigilProfiler::reuse_flush(reuse_vec, prev_reader, info);
                    obj.reuse.reset();
                }
            }
            obj.reuse.record_read(rec.at, !repeat);
        }
        obj.record_read(owner);

        let (producer_ctx, producer_call) = match producer {
            Some(p) => (ContextId(p.ctx), p.call),
            None => (ContextId::ROOT, CallNumber::ROOT),
        };
        let producer_fn = match producer_fn_memo {
            Some((memo_ctx, func)) if memo_ctx == producer_ctx => func,
            _ => {
                let func = state.ctx_funcs[producer_ctx.index()];
                producer_fn_memo = Some((producer_ctx, func));
                func
            }
        };
        let is_local = producer.is_some() && producer_fn == rec.reader_fn;

        match (is_local, repeat) {
            (true, false) => local_unique += 1,
            (true, true) => local_nonunique += 1,
            (false, false) => input_unique += 1,
            (false, true) => input_nonunique += 1,
        }
        if !is_local {
            match &mut producer_seg {
                Some((seg_ctx, seg)) if *seg_ctx == producer_ctx => {
                    if repeat {
                        seg.nonunique += 1;
                    } else {
                        seg.unique += 1;
                    }
                }
                seg_slot => {
                    if let Some((prev_ctx, prev_seg)) = seg_slot.take() {
                        SigilProfiler::flush_producer(
                            &mut state.comm,
                            &mut state.edges,
                            prev_ctx,
                            rec.ctx,
                            prev_seg,
                        );
                    }
                    let mut seg = EdgeAccum::default();
                    if repeat {
                        seg.nonunique += 1;
                    } else {
                        seg.unique += 1;
                    }
                    *seg_slot = Some((producer_ctx, seg));
                }
            }
        }
        if !repeat && producer.is_some() && producer_call != rec.call {
            if events_on {
                match transfers.last_mut() {
                    Some((last_call, bytes)) if *last_call == producer_call => *bytes += 1,
                    _ => transfers.push((producer_call, 1)),
                }
            }
            if phases_on {
                match phase_transfers.last_mut() {
                    Some((last_ctx, bytes)) if *last_ctx == producer_ctx => *bytes += 1,
                    _ => phase_transfers.push((producer_ctx, 1)),
                }
            }
        }
    }

    if let Some((prev_ctx, prev_seg)) = producer_seg {
        SigilProfiler::flush_producer(
            &mut state.comm,
            &mut state.edges,
            prev_ctx,
            rec.ctx,
            prev_seg,
        );
    }
    // `bytes_read` is tallied once per access on the dispatch thread;
    // the worker only contributes the per-byte classification.
    let consumer_stats = SigilProfiler::comm_entry(&mut state.comm, rec.ctx);
    consumer_stats.local_unique_bytes += local_unique;
    consumer_stats.local_nonunique_bytes += local_nonunique;
    consumer_stats.input_unique_bytes += input_unique;
    consumer_stats.input_nonunique_bytes += input_nonunique;
    if !transfers.is_empty() {
        state
            .transfers
            .entry(rec.idx)
            .or_default()
            .push((rec.part, transfers));
    }
    if !phase_transfers.is_empty() {
        let builder = state.phases.as_mut().expect("phases on");
        for (producer_ctx, bytes) in phase_transfers {
            builder.record_transfer(producer_ctx, rec.ctx, rec.phase_at, bytes);
        }
    }
}

/// One write run: the serial `handle_write` per-byte loop
/// (`bytes_written` is tallied on the dispatch thread).
fn apply_write(state: &mut WorkerState, rec: AccessRecord) {
    let owner = Owner::new(rec.ctx.0, rec.call);
    let (slots, consumed) = state.table.run_mut(rec.addr, rec.len as usize);
    debug_assert_eq!(consumed, rec.len as usize, "records never straddle chunks");
    for obj in slots {
        if let Some(reuse_vec) = state.reuse.as_mut() {
            if let Some(prev_reader) = obj.last_reader {
                let info = obj.reuse;
                SigilProfiler::reuse_flush(reuse_vec, prev_reader, info);
            }
        }
        obj.record_write(owner);
    }
}

/// Replays the dispatcher's [`SeqOp`] log against simulated per-thread
/// frame stacks, splicing worker transfer segments back in access
/// order. Mirrors the serial emitter exactly: `push_compute` drops
/// zero-op fragments, `push_transfer` coalesces adjacent same-pair
/// records, a read's pending op is flushed before its transfers.
pub(crate) fn sequence_events(seq: Vec<SeqOp>, transfers: &mut TransferMap) -> EventFile {
    struct SimFrame {
        ctx: ContextId,
        call: CallNumber,
        pending: u64,
    }
    fn flush(events: &mut EventFile, stack: &mut [SimFrame]) {
        if let Some(frame) = stack.last_mut() {
            let ops = frame.pending;
            frame.pending = 0;
            events.push_compute(frame.call, frame.ctx, ops);
        }
    }

    let mut events = EventFile::new();
    let mut stacks: HashMap<u32, Vec<SimFrame>> = HashMap::new();
    let mut current: u32 = 0;
    for op in seq {
        let stack = stacks.entry(current).or_default();
        match op {
            SeqOp::Call { call, ctx } => {
                let parent_call = stack.last().map_or(CallNumber::ROOT, |f| f.call);
                flush(&mut events, stack);
                events.push_call(parent_call, call, ctx);
                stack.push(SimFrame {
                    ctx,
                    call,
                    pending: 0,
                });
            }
            SeqOp::Return => {
                flush(&mut events, stack);
                stack.pop();
            }
            SeqOp::Flush => flush(&mut events, stack),
            SeqOp::Switch { thread } => current = thread,
            SeqOp::Ops { count } => {
                if let Some(frame) = stack.last_mut() {
                    frame.pending += count;
                }
            }
            SeqOp::Read { idx } => {
                if let Some(frame) = stack.last_mut() {
                    frame.pending += 1;
                }
                if let Some(mut parts) = transfers.remove(&idx) {
                    let to_call = stack.last().map_or(CallNumber::ROOT, |f| f.call);
                    parts.sort_by_key(|&(part, _)| part);
                    flush(&mut events, stack);
                    for (_, segs) in parts {
                        for (from_call, bytes) in segs {
                            events.push_transfer(from_call, to_call, bytes);
                        }
                    }
                }
            }
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(ctx_reads: &[(usize, u64)], edges: &[(u32, u32, u64)]) -> ShardFragment {
        let mut comm = Vec::new();
        for &(idx, bytes) in ctx_reads {
            let stats = SigilProfiler::comm_entry(&mut comm, ContextId(idx as u32));
            stats.input_unique_bytes += bytes;
        }
        let mut edge_rows: Vec<CommEdge> = edges
            .iter()
            .map(|&(p, c, u)| CommEdge {
                producer: ContextId(p),
                consumer: ContextId(c),
                unique_bytes: u,
                nonunique_bytes: 0,
            })
            .collect();
        edge_rows.sort_by_key(|e| (e.producer, e.consumer));
        ShardFragment {
            comm,
            edges: edge_rows,
            reuse: None,
            phases: None,
            memory: MemoryStats::default(),
        }
    }

    #[test]
    fn fragment_merge_is_commutative() {
        let a = frag(&[(0, 4), (2, 8)], &[(0, 2, 8), (1, 2, 1)]);
        let b = frag(&[(1, 3)], &[(0, 2, 2)]);
        let c = frag(&[(2, 5)], &[(3, 1, 9)]);
        let abc = merge_fragments([a.clone(), b.clone(), c.clone()]);
        let cba = merge_fragments([c, b, a]);
        assert_eq!(abc, cba);
        assert_eq!(abc.comm[2].input_unique_bytes, 13);
        assert_eq!(abc.edges.len(), 3, "same-pair edges coalesce");
        assert!(abc
            .edges
            .windows(2)
            .all(|w| (w[0].producer, w[0].consumer) <= (w[1].producer, w[1].consumer)));
    }

    #[test]
    fn empty_fragment_is_identity() {
        let a = frag(&[(0, 4)], &[(0, 1, 4)]);
        let merged = merge_fragments([ShardFragment::default(), a.clone()]);
        assert_eq!(merged, merge_fragments([a]));
    }

    #[test]
    fn sequencer_reproduces_serial_emission_order() {
        // call main(1) → 3 ops → read with an 8-byte transfer from root
        // → 2 ops → return: the flush before the Transfer counts the 3
        // ops plus the read's own op; the trailing Compute counts the 2
        // ops after.
        let seq = vec![
            SeqOp::Call {
                call: CallNumber::from_raw(1),
                ctx: ContextId(1),
            },
            SeqOp::Ops { count: 3 },
            SeqOp::Read { idx: 0 },
            SeqOp::Ops { count: 2 },
            SeqOp::Return,
        ];
        let mut transfers = TransferMap::new();
        transfers.insert(0, vec![(0, vec![(CallNumber::ROOT, 8)])]);
        let events = sequence_events(seq, &mut transfers);
        use crate::events_out::EventRecord;
        let records = events.records();
        assert_eq!(records.len(), 4);
        assert!(matches!(records[0], EventRecord::Call { .. }));
        assert!(matches!(records[1], EventRecord::Compute { ops: 4, .. }));
        assert!(
            matches!(records[2], EventRecord::Transfer { bytes: 8, to_call, .. }
                if to_call == CallNumber::from_raw(1))
        );
        assert!(matches!(records[3], EventRecord::Compute { ops: 2, .. }));
    }

    #[test]
    fn sequencer_orders_straddling_parts_by_byte_order() {
        // Two parts arriving out of order must splice back in part order
        // and coalesce into one transfer record when the producer call
        // matches.
        let producer = CallNumber::from_raw(7);
        let seq = vec![
            SeqOp::Call {
                call: CallNumber::from_raw(9),
                ctx: ContextId(2),
            },
            SeqOp::Read { idx: 5 },
            SeqOp::Return,
        ];
        let mut transfers = TransferMap::new();
        transfers.insert(5, vec![(1, vec![(producer, 4)]), (0, vec![(producer, 12)])]);
        let events = sequence_events(seq, &mut transfers);
        use crate::events_out::EventRecord;
        let transfer_bytes: Vec<u64> = events
            .records()
            .iter()
            .filter_map(|r| match r {
                EventRecord::Transfer { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(transfer_bytes, vec![16], "parts coalesce in byte order");
    }
}
