//! Sharded shadow-memory replay: parallel per-byte classification with
//! serial semantics.
//!
//! The paper's Table-I classification is **per-byte state**: every shadow
//! object evolves only through the ordered sequence of accesses touching
//! *its own address*. Partitioning the address space by 4 KiB chunk
//! (`sigil_mem::chunk_key(addr) % shards`) therefore splits the access
//! stream into `N` independent sub-streams whose per-byte state machines
//! never interact — the replay is order-independent *across* shards as
//! long as each shard sees *its* accesses in program order.
//!
//! Three pieces of state are **not** per-byte and stay on the dispatch
//! thread:
//!
//! * **Global order** — call numbers, timestamps, and the calltree cursor
//!   advance once per event; the dispatcher resolves them and carries the
//!   results (`ctx`, `call`, `reader_fn`, `at`) inside each
//!   [`AccessRecord`], so workers never consult shared state.
//! * **Residency** — chunk eviction is a *global* decision (the limit
//!   spans the whole table, FIFO/LRU order interleaves all chunks). With
//!   a `shadow_chunk_limit` the dispatcher runs a zero-sized residency
//!   oracle (`ShadowTable<()>`) through the identical run sequence; its
//!   logged victims are mirrored to the owning shard
//!   (`ShadowTable::evict_key`) *between* the same runs as in serial
//!   replay, so per-shard tables reproduce the serial residency — and the
//!   oracle's counters reproduce the serial [`MemoryStats`] exactly.
//!   **Without** a limit there are no evictions and residency is no
//!   longer a global decision at all: the oracle is *elided*, each worker
//!   owns the residency of its own chunks (disjoint sets whose union is
//!   the serial footprint, folded through the commutative
//!   [`ShardFragment`] merge), and the serial table's access counters are
//!   reproduced arithmetically by [`RouteStats`] — dispatch degenerates
//!   to address routing.
//! * **Event order** — the event file is globally ordered. The dispatcher
//!   keeps a compact [`SeqOp`] log; workers return per-access transfer
//!   segments; [`sequence_events`] replays the log with simulated frame
//!   stacks, splicing the segments back in access order with the same
//!   `push_compute`/`push_transfer` coalescing as the serial emitter, so
//!   the reconstructed file is byte-identical.
//!
//! Dispatch itself is **epoch-pipelined**: each access is resolved into
//! chunk runs (plus any eviction mirrors) in a scratch list, then staged
//! into per-shard batches, where consecutive same-shard runs with no
//! intervening eviction coalesce into one [`AccessRecord`] carrying a
//! sub-access `count`/`sub_len` stride (workers reconstruct per-access
//! metadata exactly — see [`can_coalesce`] for the legality argument).
//! Every [`EPOCH_ACCESSES`] accesses all staged batches flush so workers
//! drain epoch *k* while the dispatcher resolves epoch *k+1*. The cost of
//! the dispatch thread is observable through the `dispatch.busy_ns` /
//! `dispatch.resolve_ns` / `dispatch.records_per_access` metrics.
//!
//! Everything a worker *does* produce (communication tallies, edges,
//! reuse aggregates) is a sum over disjoint byte sets, so per-shard
//! fragments merge through the commutative [`ShardFragment::merge`]
//! layer in any order with an identical result — a property pinned by
//! the `shard_merge` proptests.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use sigil_callgrind::{CallTree, ContextId};
use sigil_mem::{chunk_key, chunk_run, MemoryStats, Owner, ShadowObject, ShadowTable, CHUNK_SLOTS};
use sigil_trace::{Addr, CallNumber, FunctionId, Timestamp};

use crate::config::SigilConfig;
use crate::events_out::EventFile;
use crate::phase::{PhaseBuilder, PhaseProfile};
use crate::profiler::{EdgeAccum, SigilProfiler};
use crate::reuse::ContextReuse;
use crate::stats::{CommEdge, CommStats};

/// Messages per batch before a channel send.
const BATCH: usize = 256;
/// Batches in flight per worker before the dispatcher blocks
/// (backpressure when workers outnumber cores).
const CHANNEL_DEPTH: usize = 8;
/// Dispatched accesses per staging epoch. Coalescing slows record
/// production, so batches alone would add latency before workers see
/// work; at each epoch boundary every non-empty staging batch flushes,
/// keeping the previous epoch draining while the next one resolves.
const EPOCH_ACCESSES: u64 = 2048;

/// Transfer segments produced by one access, keyed by global access
/// index: `(part, [(producer_call, bytes)])` per chunk run that found
/// cross-call dependencies.
pub(crate) type TransferMap = HashMap<u64, Vec<(u32, Vec<(CallNumber, u64)>)>>;

/// One shadow access run — or a coalesced train of them — pre-resolved
/// on the dispatch thread.
///
/// `addr..addr+len` never crosses a chunk boundary (runs split at chunk
/// edges, and coalescing only extends within a chunk), so a worker
/// applies it with a single `run_mut`.
///
/// A record with `count > 1` carries that many *consecutive whole
/// accesses* coalesced into one message. For reads needing per-access
/// metadata (`sub_len > 0`), sub-access `k` of the train covers
/// `sub_len` bytes starting at `addr + k*sub_len` with index `idx + k`,
/// timestamp `at.advance(k)`, and phase stamp `phase_at + k` — the
/// coalescing predicate ([`can_coalesce`]) admits exactly the trains for
/// which this reconstruction is lossless.
#[derive(Debug, Clone, Copy)]
struct AccessRecord {
    /// Global access index of the train's first access (one per
    /// `Read`/`Write` event, shared by all parts of a straddling
    /// access) — sequences transfers back into program order.
    idx: u64,
    /// Run index within the access, in byte order.
    part: u32,
    write: bool,
    addr: Addr,
    len: u32,
    /// Coalesced accesses in this record (`1` = a plain run).
    count: u32,
    /// Per-sub-access byte stride for coalesced reads; `0` when the
    /// record needs no sub-access reconstruction (writes, plain runs,
    /// straddle parts, free-mode reads).
    sub_len: u32,
    /// The consuming/producing frame's context.
    ctx: ContextId,
    /// Its dynamic call number.
    call: CallNumber,
    /// Guest thread the access ran on (raw thread id) — part of the
    /// owner identity, and the discriminant for inter-thread
    /// classification.
    thread: u32,
    /// The reader's function identity (reads only).
    reader_fn: Option<FunctionId>,
    /// Op-clock timestamp of the (first) access.
    at: Timestamp,
    /// Phase-clock timestamp of the (first) access (post-tick —
    /// includes the access's own retired op), for phase-profile
    /// transfer bucketing.
    phase_at: u64,
}

enum ShardMsg {
    /// Defines the next `defs.len()` context ids' functions (contexts
    /// broadcast in id order, so the ids are implicit). One message per
    /// sync covers every context created since the last one; the `Arc`
    /// is shared across shards instead of cloning the definitions
    /// per-shard.
    CtxDefs(Arc<[Option<FunctionId>]>),
    Access(AccessRecord),
    /// Mirror of a residency-oracle eviction owned by this shard.
    Evict {
        key: u64,
    },
}

/// Globally-ordered event-file operations logged by the dispatcher
/// (events mode only) and replayed by [`sequence_events`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum SeqOp {
    /// A dynamic call was entered (parent comes from the simulated
    /// stack).
    Call { call: CallNumber, ctx: ContextId },
    /// The current frame returned.
    Return,
    /// Flush the current frame's pending ops (thread switch boundary).
    Flush,
    /// Make `thread` current (no flush — `on_finish` drains residual
    /// frames without one, exactly like the serial path).
    Switch { thread: u32 },
    /// `count` retired ops charged to the current frame.
    Ops { count: u64 },
    /// A read access; its transfer segments (if any) are looked up by
    /// index.
    Read { idx: u64 },
}

/// One access resolved against global-order state: either a chunk run
/// bound for its owner shard, or an eviction mirror that must precede
/// the run that triggered it.
#[derive(Debug, Clone, Copy)]
enum ResolvedOp {
    Evict { key: u64 },
    Run { addr: Addr, len: u32 },
}

/// Read-coalescing regime, fixed per engine by the feature set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadCoalesce {
    /// No per-access metadata is consumed by `apply_read` (reuse,
    /// events, and phases all off): any contiguous same-owner reads
    /// merge, including straddle parts.
    Free,
    /// Per-access metadata matters: only whole single-run accesses on
    /// an exact `idx`/`at`/`phase_at` stride merge, so workers can
    /// reconstruct each sub-access.
    Strided,
}

/// Arithmetic mirror of an *unbounded* [`ShadowTable`]'s access
/// counters, maintained by the elided-oracle dispatch path.
///
/// With no chunk limit the table's counter evolution is a pure function
/// of the run-key sequence: `run_mut` of `n` slots adds `n` accesses and
/// one run; the run counts `n` MRU hits when its chunk equals the
/// previous run's chunk, else `n - 1` (the first slot pays the probe,
/// and nothing but a run ever moves the MRU cursor when no chunk is
/// ever evicted). Replaying that recurrence here reproduces the serial
/// table's `MemoryStats` counters without instantiating a table.
#[derive(Debug, Default)]
struct RouteStats {
    last_key: Option<u64>,
    accesses: u64,
    mru_hits: u64,
    runs: u64,
    run_bytes: u64,
}

impl RouteStats {
    fn record_run(&mut self, key: u64, n: u64) {
        self.accesses += n;
        self.runs += 1;
        self.run_bytes += n;
        self.mru_hits += if self.last_key == Some(key) { n } else { n - 1 };
        self.last_key = Some(key);
    }
}

/// Dispatch-thread cost and shape counters, exported by the profiler as
/// `dispatch.*` metrics.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct DispatchStats {
    /// Nanoseconds spent in `dispatch_access` (obs-enabled runs only).
    pub(crate) busy_ns: u64,
    /// Nanoseconds of that spent resolving global order (oracle /
    /// routing), before staging (obs-enabled runs only).
    pub(crate) resolve_ns: u64,
    /// Access records staged (after coalescing).
    pub(crate) records: u64,
    /// Accesses dispatched.
    pub(crate) accesses: u64,
}

/// What one worker hands back at join time.
pub(crate) struct ShardResult {
    pub(crate) comm: Vec<CommStats>,
    pub(crate) edges: HashMap<(ContextId, ContextId), EdgeAccum>,
    pub(crate) reuse: Option<Vec<ContextReuse>>,
    pub(crate) transfers: TransferMap,
    /// Phase-profile transfer buckets for this shard's bytes (phase
    /// collection only).
    pub(crate) phases: Option<PhaseBuilder>,
    /// The worker table's own counters. With a dispatch oracle these
    /// are observability-only; with the oracle elided the `resident_*`
    /// fields are authoritative (the shards' disjoint chunk sets union
    /// to the serial footprint).
    pub(crate) stats: MemoryStats,
    pub(crate) evictions_applied: u64,
    /// Nanoseconds this worker spent applying batches (telemetry).
    pub(crate) busy_ns: u64,
    /// Nanoseconds this worker spent blocked on its channel (telemetry).
    pub(crate) idle_ns: u64,
}

/// Everything the engine hands back after joining its workers.
pub(crate) struct ShardFinish {
    /// The serial-equivalent shadow counters (oracle stats re-priced,
    /// or the elided composition — exact either way).
    pub(crate) memory: MemoryStats,
    pub(crate) dispatch: DispatchStats,
    pub(crate) results: Vec<ShardResult>,
    pub(crate) seq: Vec<SeqOp>,
}

/// One shard's (or the dispatch thread's) contribution to a profile:
/// the commutative merge layer.
///
/// `comm` and `reuse` are indexed by raw context id; `edges` is sorted
/// by `(producer, consumer)`; `phases` folds cell-wise through
/// [`PhaseProfile::merge`]; `memory` sums component-wise. All five
/// merges are commutative and associative, so fragments fold in any
/// permutation to an identical result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardFragment {
    /// Per-context communication tallies (index = raw context id).
    pub comm: Vec<CommStats>,
    /// Producer→consumer edges, sorted by `(producer, consumer)`.
    pub edges: Vec<CommEdge>,
    /// Per-context reuse aggregates (reuse mode only).
    pub reuse: Option<Vec<ContextReuse>>,
    /// Phase-sliced profile slice (phase collection only).
    pub phases: Option<PhaseProfile>,
    /// Shadow-footprint counters.
    pub memory: MemoryStats,
}

impl ShardFragment {
    /// Folds `other` into `self` component-wise; see the type docs for
    /// the algebra.
    pub fn merge(&mut self, other: &ShardFragment) {
        if other.comm.len() > self.comm.len() {
            self.comm.resize(other.comm.len(), CommStats::default());
        }
        for (into, from) in self.comm.iter_mut().zip(&other.comm) {
            into.merge(from);
        }

        if !other.edges.is_empty() {
            let mut map: std::collections::BTreeMap<(ContextId, ContextId), (u64, u64)> =
                std::collections::BTreeMap::new();
            for edge in self.edges.iter().chain(&other.edges) {
                let entry = map.entry((edge.producer, edge.consumer)).or_default();
                entry.0 += edge.unique_bytes;
                entry.1 += edge.nonunique_bytes;
            }
            self.edges = map
                .into_iter()
                .map(|((producer, consumer), (unique, nonunique))| CommEdge {
                    producer,
                    consumer,
                    unique_bytes: unique,
                    nonunique_bytes: nonunique,
                })
                .collect();
        }

        if let Some(from) = &other.reuse {
            let into = self.reuse.get_or_insert_with(Vec::new);
            while into.len() < from.len() {
                let next = ContextId(u32::try_from(into.len()).expect("context count fits u32"));
                into.push(ContextReuse::new(next));
            }
            for (row, other_row) in into.iter_mut().zip(from) {
                row.merge(other_row);
            }
        }

        if let Some(from) = &other.phases {
            match self.phases.as_mut() {
                Some(into) => into.merge(from),
                None => self.phases = Some(from.clone()),
            }
        }

        self.memory = self.memory.combined(other.memory);
    }
}

/// Folds an iterator of fragments into one (order-insensitive).
pub fn merge_fragments(frags: impl IntoIterator<Item = ShardFragment>) -> ShardFragment {
    let mut merged = ShardFragment::default();
    for frag in frags {
        merged.merge(&frag);
    }
    merged
}

impl ShardResult {
    pub(crate) fn into_fragment(self) -> (ShardFragment, TransferMap) {
        let mut edges: Vec<CommEdge> = self
            .edges
            .into_iter()
            .map(|((producer, consumer), accum)| CommEdge {
                producer,
                consumer,
                unique_bytes: accum.unique,
                nonunique_bytes: accum.nonunique,
            })
            .collect();
        edges.sort_by_key(|e| (e.producer, e.consumer));
        (
            ShardFragment {
                comm: self.comm,
                edges,
                reuse: self.reuse,
                phases: self.phases.map(PhaseBuilder::finish),
                memory: MemoryStats::default(),
            },
            self.transfers,
        )
    }
}

/// Decides whether `cand` can extend the coalesced train `prev` (the
/// last staged record of `cand`'s shard, with the staging window still
/// open — no flush, eviction, or context sync in between).
///
/// Always required: same direction, owner (`ctx`, `call`), reader
/// identity, and byte contiguity (`prev` ends where `cand` starts).
/// Contiguity plus same-shard routing implies same-chunk (`N ≥ 2`
/// shards map adjacent chunks to different shards), so a merged record
/// still never straddles a chunk.
///
/// Writes always merge: `apply_write` touches per-byte state through
/// the owner alone, so splitting a write train at any boundary is
/// unobservable. Reads merge freely when no per-access metadata is
/// consumed ([`ReadCoalesce::Free`]); otherwise only whole single-run
/// accesses on an exact index/timestamp/phase stride merge
/// ([`ReadCoalesce::Strided`]), which is precisely the shape
/// `apply_read` can split back losslessly.
fn can_coalesce(mode: ReadCoalesce, prev: &AccessRecord, cand: &AccessRecord) -> bool {
    // The thread is part of the owner identity: root frames across
    // guest threads share `(ctx, call)`, so merging across a thread
    // boundary would conflate distinct owners.
    if prev.write != cand.write
        || prev.ctx != cand.ctx
        || prev.call != cand.call
        || prev.thread != cand.thread
        || prev.reader_fn != cand.reader_fn
        || prev.addr.wrapping_add(u64::from(prev.len)) != cand.addr
    {
        return false;
    }
    if cand.write {
        return true;
    }
    match mode {
        ReadCoalesce::Free => true,
        ReadCoalesce::Strided => {
            cand.sub_len > 0
                && cand.sub_len == cand.len
                && prev.sub_len == cand.sub_len
                && cand.idx == prev.idx + u64::from(prev.count)
                && cand.at == prev.at.advance(u64::from(prev.count))
                && cand.phase_at == prev.phase_at + u64::from(prev.count)
        }
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// The dispatch-side engine owned by a sharded [`SigilProfiler`].
pub(crate) struct ShardEngine {
    shards: usize,
    /// Zero-sized residency oracle: replays the exact serial run
    /// sequence, so its counters and its eviction log *are* the serial
    /// table's. `None` when the shadow memory is unbounded (and the
    /// legacy path isn't forced): no evictions can occur, so dispatch
    /// elides the table and [`RouteStats`] reproduces its counters.
    oracle: Option<ShadowTable<()>>,
    /// Counter mirror for the elided-oracle path.
    route: RouteStats,
    senders: Vec<SyncSender<Vec<ShardMsg>>>,
    batches: Vec<Vec<ShardMsg>>,
    /// Whether the last message staged to this shard is an `Access`
    /// still eligible for coalescing (no flush or control message has
    /// closed the window since).
    staging_open: Vec<bool>,
    handles: Vec<Option<JoinHandle<ShardResult>>>,
    /// A worker died before its channel closed: `(shard, panic
    /// message)`, reported on the next dispatch instead of profiling
    /// into the void until join.
    poisoned: Option<(usize, String)>,
    /// Contexts broadcast so far (defs are sent in id order).
    synced_ctxs: usize,
    next_idx: u64,
    events_on: bool,
    seq: Vec<SeqOp>,
    /// Per-access resolution scratch (evictions interleaved before the
    /// runs that triggered them, in serial order).
    scratch_ops: Vec<ResolvedOp>,
    coalesce_on: bool,
    read_coalesce: ReadCoalesce,
    /// Accesses dispatched since the last epoch flush.
    epoch_accesses: u64,
    dispatch: DispatchStats,
    /// Per-worker resident-chunk counts (elided mode), refreshed by each
    /// worker after every batch — mid-run residency reads lag in-flight
    /// batches; the post-join stats are exact.
    resident_chunks: Vec<Arc<AtomicU64>>,
    /// Telemetry (obs-enabled runs only): batches sent per shard, and
    /// the workers' shared drain counters — their difference is the
    /// channel depth sampled into the timeseries at each flush.
    obs_on: bool,
    sent_batches: Vec<u64>,
    received_batches: Vec<Arc<AtomicU64>>,
    /// Pre-built `shard.{i}.depth` gauge keys (no per-flush `format!`).
    depth_keys: Vec<String>,
}

impl std::fmt::Debug for ShardEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardEngine")
            .field("shards", &self.shards)
            .field("oracle_elided", &self.oracle.is_none())
            .field("synced_ctxs", &self.synced_ctxs)
            .field("dispatched_accesses", &self.next_idx)
            .finish_non_exhaustive()
    }
}

impl ShardEngine {
    pub(crate) fn new(config: &SigilConfig) -> Self {
        let shards = config.shards.max(2);
        let oracle =
            (config.shadow_chunk_limit.is_some() || config.force_dispatch_oracle).then(|| {
                let mut oracle = match config.shadow_chunk_limit {
                    Some(limit) => ShadowTable::with_chunk_limit(limit, config.eviction),
                    None => ShadowTable::new(),
                };
                oracle.enable_eviction_log();
                oracle
            });
        let read_coalesce =
            if config.reuse_mode || config.record_events || config.phase_bucket_ops.is_some() {
                ReadCoalesce::Strided
            } else {
                ReadCoalesce::Free
            };
        let mut senders = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        let mut received_batches = Vec::with_capacity(shards);
        let mut resident_chunks = Vec::with_capacity(shards);
        let (reuse_mode, events_on) = (config.reuse_mode, config.record_events);
        let phase_bucket_ops = config.phase_bucket_ops;
        for shard in 0..shards {
            let (tx, rx) = sync_channel::<Vec<ShardMsg>>(CHANNEL_DEPTH);
            senders.push(tx);
            let received = Arc::new(AtomicU64::new(0));
            received_batches.push(Arc::clone(&received));
            let resident = Arc::new(AtomicU64::new(0));
            resident_chunks.push(Arc::clone(&resident));
            let spec = WorkerSpec {
                shard,
                reuse_mode,
                events_on,
                phase_bucket_ops,
                batches_received: received,
                resident_chunks: resident,
            };
            handles.push(Some(
                std::thread::Builder::new()
                    .name(format!("sigil-shard-{shard}"))
                    .spawn(move || shard_worker(spec, rx))
                    .expect("spawn shard worker"),
            ));
        }
        ShardEngine {
            shards,
            oracle,
            route: RouteStats::default(),
            senders,
            batches: (0..shards).map(|_| Vec::with_capacity(BATCH)).collect(),
            staging_open: vec![false; shards],
            handles,
            poisoned: None,
            synced_ctxs: 0,
            next_idx: 0,
            events_on,
            seq: Vec::new(),
            scratch_ops: Vec::new(),
            coalesce_on: !config.no_dispatch_coalesce,
            read_coalesce,
            epoch_accesses: 0,
            dispatch: DispatchStats::default(),
            resident_chunks,
            obs_on: sigil_obs::is_enabled(),
            sent_batches: vec![0; shards],
            received_batches,
            depth_keys: (0..shards).map(|s| format!("shard.{s}.depth")).collect(),
        }
    }

    /// Number of worker shards.
    pub(crate) fn shard_count(&self) -> usize {
        self.shards
    }

    /// Whether dispatch runs without a residency oracle.
    #[cfg(test)]
    pub(crate) fn oracle_elided(&self) -> bool {
        self.oracle.is_none()
    }

    fn shard_of(&self, key: u64) -> usize {
        (key % self.shards as u64) as usize
    }

    /// Stages a control message (context sync / eviction mirror),
    /// closing the shard's coalescing window: per-byte replay order
    /// within a shard is batch order, so nothing may merge across it.
    fn push_ctl(&mut self, shard: usize, msg: ShardMsg) {
        self.staging_open[shard] = false;
        let batch = &mut self.batches[shard];
        batch.push(msg);
        if batch.len() >= BATCH {
            self.flush_batch(shard);
        }
    }

    /// Stages one resolved run, extending the shard's open coalescing
    /// train when legal.
    fn stage_access(&mut self, shard: usize, rec: AccessRecord) {
        if self.coalesce_on && self.staging_open[shard] {
            if let Some(ShardMsg::Access(prev)) = self.batches[shard].last_mut() {
                if can_coalesce(self.read_coalesce, prev, &rec) {
                    prev.len += rec.len;
                    prev.count += 1;
                    debug_assert_eq!(
                        chunk_key(prev.addr),
                        chunk_key(prev.addr + u64::from(prev.len) - 1),
                        "coalesced records never straddle chunks"
                    );
                    return;
                }
            }
        }
        self.dispatch.records += 1;
        self.staging_open[shard] = true;
        let batch = &mut self.batches[shard];
        batch.push(ShardMsg::Access(rec));
        if batch.len() >= BATCH {
            self.flush_batch(shard);
        }
    }

    fn flush_batch(&mut self, shard: usize) {
        self.staging_open[shard] = false;
        if self.batches[shard].is_empty() {
            return;
        }
        let batch = std::mem::replace(&mut self.batches[shard], Vec::with_capacity(BATCH));
        if self.senders[shard].send(batch).is_err() {
            // The worker hung up mid-run: join it now, capture the
            // panic payload, and let the next dispatch fail fast with
            // the culprit named instead of profiling into the void.
            let message = match self.handles[shard].take() {
                Some(handle) => match handle.join() {
                    Err(payload) => panic_message(payload.as_ref()),
                    Ok(_) => "worker exited before its channel closed".to_owned(),
                },
                None => "worker already joined".to_owned(),
            };
            if self.poisoned.is_none() {
                self.poisoned = Some((shard, message));
            }
            return;
        }
        if self.obs_on {
            self.sent_batches[shard] += 1;
            self.sample_depths(shard);
        }
    }

    /// Samples the flushed shard's channel depth and the whole
    /// pipeline's dispatch backlog (batches sent but not yet drained)
    /// into the timeseries store.
    fn sample_depths(&self, shard: usize) {
        let drained = self.received_batches[shard].load(Ordering::Relaxed);
        let depth = self.sent_batches[shard].saturating_sub(drained);
        sigil_obs::timeseries::record_gauge(&self.depth_keys[shard], depth as f64);
        let sent: u64 = self.sent_batches.iter().sum();
        let received: u64 = self
            .received_batches
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        sigil_obs::timeseries::record_gauge(
            "shard.dispatch_backlog",
            sent.saturating_sub(received) as f64,
        );
        sigil_obs::timeseries::record_counter("shard.batches_sent", 1);
    }

    /// Broadcasts any calltree contexts created since the last sync, so
    /// workers can resolve producer functions from local state. All
    /// pending definitions travel in one `CtxDefs` message per shard
    /// (sharing one allocation), not one message per context per shard.
    pub(crate) fn sync_ctxs(&mut self, tree: &CallTree) {
        if self.synced_ctxs >= tree.len() {
            return;
        }
        let defs: Arc<[Option<FunctionId>]> = (self.synced_ctxs..tree.len())
            .map(|i| {
                let ctx = ContextId(u32::try_from(i).expect("context count fits u32"));
                tree.node(ctx).func
            })
            .collect();
        self.synced_ctxs = tree.len();
        for shard in 0..self.shards {
            self.push_ctl(shard, ShardMsg::CtxDefs(Arc::clone(&defs)));
        }
    }

    pub(crate) fn log_call(&mut self, call: CallNumber, ctx: ContextId) {
        if self.events_on {
            self.seq.push(SeqOp::Call { call, ctx });
        }
    }

    pub(crate) fn log_return(&mut self) {
        if self.events_on {
            self.seq.push(SeqOp::Return);
        }
    }

    /// A thread switch during the run: flush, then switch (serial
    /// `ThreadSwitch` semantics).
    pub(crate) fn log_switch(&mut self, thread: u32) {
        if self.events_on {
            self.seq.push(SeqOp::Flush);
            self.seq.push(SeqOp::Switch { thread });
        }
    }

    /// A thread resumed by `on_finish` frame draining: switch without a
    /// flush (the serial path sets `current_thread` directly).
    pub(crate) fn log_resume(&mut self, thread: u32) {
        if self.events_on {
            self.seq.push(SeqOp::Switch { thread });
        }
    }

    pub(crate) fn log_ops(&mut self, count: u64) {
        if !self.events_on || count == 0 {
            return;
        }
        // Runs of compute coalesce; reads/calls/switches break the run.
        if let Some(SeqOp::Ops { count: last }) = self.seq.last_mut() {
            *last += count;
        } else {
            self.seq.push(SeqOp::Ops { count });
        }
    }

    /// Routes one shadow access. Phase 1 resolves it into chunk runs
    /// (and any evictions they trigger) against the global-order state;
    /// phase 2 stages the resolved ops into per-shard batches,
    /// coalescing where legal; every [`EPOCH_ACCESSES`] accesses all
    /// staged batches flush so workers drain while dispatch resolves
    /// ahead.
    #[allow(clippy::too_many_arguments)] // the flattened AccessRecord fields
    pub(crate) fn dispatch_access(
        &mut self,
        write: bool,
        addr: Addr,
        len: usize,
        ctx: ContextId,
        call: CallNumber,
        thread: u32,
        reader_fn: Option<FunctionId>,
        at: Timestamp,
        phase_at: u64,
    ) {
        if let Some((shard, message)) = self.poisoned.take() {
            panic!("shard worker {shard} panicked: {message}");
        }
        let idx = self.next_idx;
        self.next_idx += 1;
        self.dispatch.accesses += 1;
        self.epoch_accesses += 1;
        if !write && self.events_on {
            self.seq.push(SeqOp::Read { idx });
        }
        let timer = self.obs_on.then(Instant::now);

        // Phase 1: resolve into chunk runs + eviction mirrors.
        self.scratch_ops.clear();
        let mut runs_resolved = 0u32;
        {
            let scratch = &mut self.scratch_ops;
            match self.oracle.as_mut() {
                Some(oracle) => {
                    let mut addr = addr;
                    let mut remaining = len;
                    while remaining > 0 {
                        let (_, consumed) = oracle.run_mut(addr, remaining);
                        // Mirror this run's evictions *before* the run
                        // itself: per victim chunk the eviction follows
                        // all its prior accesses (dispatch order) and
                        // precedes any re-creation.
                        if !oracle.evictions().is_empty() {
                            scratch.extend(
                                oracle
                                    .evictions()
                                    .iter()
                                    .map(|&key| ResolvedOp::Evict { key }),
                            );
                            oracle.clear_evictions();
                        }
                        scratch.push(ResolvedOp::Run {
                            addr,
                            len: u32::try_from(consumed).expect("run fits a chunk"),
                        });
                        runs_resolved += 1;
                        addr = addr.wrapping_add(consumed as u64);
                        remaining -= consumed;
                    }
                }
                None => {
                    // Elided oracle: no evictions are possible, so
                    // resolution is pure address arithmetic plus the
                    // counter recurrence.
                    let route = &mut self.route;
                    let mut addr = addr;
                    let mut remaining = len;
                    while remaining > 0 {
                        let (key, consumed) = chunk_run(addr, remaining);
                        route.record_run(key, consumed as u64);
                        scratch.push(ResolvedOp::Run {
                            addr,
                            len: u32::try_from(consumed).expect("run fits a chunk"),
                        });
                        runs_resolved += 1;
                        addr = addr.wrapping_add(consumed as u64);
                        remaining -= consumed;
                    }
                }
            }
        }
        let resolve_done = timer.map(|_| Instant::now());

        // Phase 2: stage (coalescing) and mirror evictions in order.
        let mut part = 0u32;
        for i in 0..self.scratch_ops.len() {
            match self.scratch_ops[i] {
                ResolvedOp::Evict { key } => {
                    self.push_ctl(self.shard_of(key), ShardMsg::Evict { key });
                }
                ResolvedOp::Run { addr, len } => {
                    let whole_read = !write && runs_resolved == 1;
                    let shard = self.shard_of(chunk_key(addr));
                    self.stage_access(
                        shard,
                        AccessRecord {
                            idx,
                            part,
                            write,
                            addr,
                            len,
                            count: 1,
                            sub_len: if whole_read { len } else { 0 },
                            ctx,
                            call,
                            thread,
                            reader_fn,
                            at,
                            phase_at,
                        },
                    );
                    part += 1;
                }
            }
        }
        if self.epoch_accesses >= EPOCH_ACCESSES {
            self.epoch_accesses = 0;
            for shard in 0..self.shards {
                self.flush_batch(shard);
            }
        }
        if let (Some(t0), Some(t1)) = (timer, resolve_done) {
            self.dispatch.resolve_ns +=
                u64::try_from(t1.duration_since(t0).as_nanos()).unwrap_or(u64::MAX);
            self.dispatch.busy_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
    }

    /// The serial-equivalent shadow counters.
    ///
    /// With a dispatch oracle these come straight from it (whose `T =
    /// ()` stores no bytes — residency is re-priced at the serial
    /// table's slot size) and are exact at any time. With the oracle
    /// elided the access counters ([`RouteStats`]) are exact, and the
    /// residency comes from the workers' per-batch snapshots — lagging
    /// in-flight batches mid-run, exact after [`ShardEngine::finish`]
    /// (which recomputes it from the joined workers' tables).
    pub(crate) fn memory_stats(&self) -> MemoryStats {
        match &self.oracle {
            Some(oracle) => {
                let mut stats = oracle.stats();
                stats.resident_bytes =
                    stats.resident_slots * std::mem::size_of::<ShadowObject>() as u64;
                stats
            }
            None => {
                let chunks: u64 = self
                    .resident_chunks
                    .iter()
                    .map(|c| c.load(Ordering::Relaxed))
                    .sum();
                self.elided_stats(chunks)
            }
        }
    }

    fn elided_stats(&self, resident_chunks: u64) -> MemoryStats {
        MemoryStats {
            resident_chunks,
            resident_slots: resident_chunks * CHUNK_SLOTS as u64,
            resident_bytes: resident_chunks
                * (CHUNK_SLOTS * std::mem::size_of::<ShadowObject>()) as u64,
            evicted_chunks: 0,
            accesses: self.route.accesses,
            mru_hits: self.route.mru_hits,
            table_probes: self.route.accesses - self.route.mru_hits,
            runs: self.route.runs,
            run_bytes: self.route.run_bytes,
        }
    }

    /// Flushes outstanding batches, closes the channels, joins the
    /// workers, and composes the final serial-equivalent memory stats.
    pub(crate) fn finish(mut self) -> ShardFinish {
        for shard in 0..self.shards {
            self.flush_batch(shard);
        }
        if let Some((shard, message)) = self.poisoned.take() {
            panic!("shard worker {shard} panicked: {message}");
        }
        self.senders.clear();
        let results: Vec<ShardResult> = self
            .handles
            .iter_mut()
            .enumerate()
            .map(|(shard, slot)| {
                let handle = slot.take().expect("worker joined twice");
                match handle.join() {
                    Ok(result) => result,
                    Err(payload) => panic!(
                        "shard worker {shard} panicked: {}",
                        panic_message(payload.as_ref())
                    ),
                }
            })
            .collect();
        let memory = match &self.oracle {
            Some(oracle) => {
                let mut stats = oracle.stats();
                stats.resident_bytes =
                    stats.resident_slots * std::mem::size_of::<ShadowObject>() as u64;
                stats
            }
            None => {
                // The shards own disjoint chunk sets whose union is the
                // serial footprint; the workers' own tables (T =
                // ShadowObject) price bytes exactly like serial replay.
                let chunks: u64 = results.iter().map(|r| r.stats.resident_chunks).sum();
                self.elided_stats(chunks)
            }
        };
        ShardFinish {
            memory,
            dispatch: self.dispatch,
            results,
            seq: std::mem::take(&mut self.seq),
        }
    }
}

/// Per-worker launch parameters.
struct WorkerSpec {
    shard: usize,
    reuse_mode: bool,
    events_on: bool,
    /// Phase-profile bucket width; `Some` turns on transfer bucketing.
    phase_bucket_ops: Option<u64>,
    /// Telemetry: batches this worker has drained, shared with the
    /// dispatcher's channel-depth sampling.
    batches_received: Arc<AtomicU64>,
    /// Resident-chunk count of this worker's table, refreshed after
    /// every batch for the dispatcher's elided-mode residency reads.
    resident_chunks: Arc<AtomicU64>,
}

/// Per-worker replay state.
struct WorkerState {
    table: ShadowTable<ShadowObject>,
    comm: Vec<CommStats>,
    edges: HashMap<(ContextId, ContextId), EdgeAccum>,
    reuse: Option<Vec<ContextReuse>>,
    /// Context → function map, filled by `CtxDefs` broadcasts.
    ctx_funcs: Vec<Option<FunctionId>>,
    transfers: TransferMap,
    phases: Option<PhaseBuilder>,
    events_on: bool,
    evictions_applied: u64,
}

fn shard_worker(spec: WorkerSpec, rx: Receiver<Vec<ShardMsg>>) -> ShardResult {
    let _span = sigil_obs::span_with(|| format!("shard-worker-{}", spec.shard));
    let mut state = WorkerState {
        table: ShadowTable::new(),
        comm: Vec::new(),
        edges: HashMap::new(),
        reuse: spec.reuse_mode.then(Vec::new),
        ctx_funcs: Vec::new(),
        transfers: TransferMap::new(),
        phases: spec.phase_bucket_ops.map(PhaseBuilder::new),
        events_on: spec.events_on,
        evictions_applied: 0,
    };
    let mut busy_ns = 0u64;
    let mut idle_ns = 0u64;
    loop {
        let wait = Instant::now();
        let Ok(batch) = rx.recv() else { break };
        idle_ns += u64::try_from(wait.elapsed().as_nanos()).unwrap_or(u64::MAX);
        spec.batches_received.fetch_add(1, Ordering::Relaxed);
        let work = Instant::now();
        for msg in batch {
            match msg {
                ShardMsg::CtxDefs(defs) => state.ctx_funcs.extend(defs.iter().copied()),
                ShardMsg::Evict { key } => {
                    let evicted = state.table.evict_key(key);
                    debug_assert!(evicted, "mirrored victim must be resident");
                    state.evictions_applied += u64::from(evicted);
                }
                ShardMsg::Access(rec) if rec.write => apply_write(&mut state, rec),
                ShardMsg::Access(rec) => apply_read(&mut state, rec),
            }
        }
        spec.resident_chunks
            .store(state.table.chunk_count() as u64, Ordering::Relaxed);
        busy_ns += u64::try_from(work.elapsed().as_nanos()).unwrap_or(u64::MAX);
    }
    // Flush outstanding reuse records (bytes still "live" at exit) —
    // the shard owns exactly its bytes, so the union over shards equals
    // the serial table walk.
    if let Some(reuse_vec) = state.reuse.as_mut() {
        for (_, obj) in state.table.iter() {
            if let Some(reader) = obj.last_reader {
                SigilProfiler::reuse_flush(reuse_vec, reader, obj.reuse);
            }
        }
    }
    ShardResult {
        stats: state.table.stats(),
        comm: state.comm,
        edges: state.edges,
        reuse: state.reuse,
        transfers: state.transfers,
        phases: state.phases,
        evictions_applied: state.evictions_applied,
        busy_ns,
        idle_ns,
    }
}

/// One read record: splits a coalesced train back into its sub-accesses
/// and replays each through the serial `handle_read` per-byte loop.
fn apply_read(state: &mut WorkerState, rec: AccessRecord) {
    let WorkerState {
        table,
        comm,
        edges,
        reuse,
        ctx_funcs,
        transfers,
        phases,
        events_on,
        ..
    } = state;
    let (slots, consumed) = table.run_mut(rec.addr, rec.len as usize);
    debug_assert_eq!(consumed, rec.len as usize, "records never straddle chunks");
    // Strided trains carry `count` whole accesses of `sub_len` bytes
    // each; everything else (plain runs, straddle parts, free-mode
    // trains) replays as one pass — free-mode records consume none of
    // the per-access metadata reconstructed here.
    let sub_len = if rec.count > 1 && rec.sub_len > 0 {
        rec.sub_len as usize
    } else {
        rec.len as usize
    };
    // The producer-function memo is a pure cache over `ctx_funcs`, so
    // it can persist across sub-access boundaries.
    let mut producer_fn_memo: Option<(ContextId, Option<FunctionId>)> = None;
    for (k, sub_slots) in slots.chunks_mut(sub_len).enumerate() {
        let k = k as u64;
        let sub = AccessRecord {
            idx: rec.idx + k,
            at: rec.at.advance(k),
            phase_at: rec.phase_at + k,
            ..rec
        };
        read_sub_access(
            sub_slots,
            &sub,
            comm,
            edges,
            reuse,
            ctx_funcs,
            transfers,
            phases,
            *events_on,
            &mut producer_fn_memo,
        );
    }
}

/// One read sub-access: the serial `handle_read` per-byte loop, with
/// producer functions resolved from the broadcast context map.
#[allow(clippy::too_many_arguments)] // flattened WorkerState fields
fn read_sub_access(
    slots: &mut [ShadowObject],
    rec: &AccessRecord,
    comm: &mut Vec<CommStats>,
    edges: &mut HashMap<(ContextId, ContextId), EdgeAccum>,
    reuse: &mut Option<Vec<ContextReuse>>,
    ctx_funcs: &[Option<FunctionId>],
    all_transfers: &mut TransferMap,
    phases: &mut Option<PhaseBuilder>,
    events_on: bool,
    producer_fn_memo: &mut Option<(ContextId, Option<FunctionId>)>,
) {
    let owner = Owner::new(rec.ctx.0, rec.call, rec.thread);
    let mut local_unique = 0u64;
    let mut local_nonunique = 0u64;
    let mut input_unique = 0u64;
    let mut input_nonunique = 0u64;
    let mut inter_unique = 0u64;
    let mut inter_nonunique = 0u64;
    let mut producer_seg: Option<(ContextId, EdgeAccum)> = None;
    let mut transfers: Vec<(CallNumber, u64)> = Vec::new();
    // Phase-profile transfer segments, mirroring the serial path's
    // producer-context accumulation (see `SigilProfiler::handle_read`).
    let mut phase_transfers: Vec<(ContextId, u64)> = Vec::new();
    let phases_on = phases.is_some();

    for obj in slots {
        let repeat = obj.is_repeat_read(owner);
        let producer = obj.last_writer;

        if let Some(reuse_vec) = reuse.as_mut() {
            if !repeat {
                if let Some(prev_reader) = obj.last_reader {
                    let info = obj.reuse;
                    SigilProfiler::reuse_flush(reuse_vec, prev_reader, info);
                    obj.reuse.reset();
                }
            }
            obj.reuse.record_read(rec.at, !repeat);
        }
        obj.record_read(owner);

        let (producer_ctx, producer_call) = match producer {
            Some(p) => (ContextId(p.ctx), p.call),
            None => (ContextId::ROOT, CallNumber::ROOT),
        };
        let producer_fn = match *producer_fn_memo {
            Some((memo_ctx, func)) if memo_ctx == producer_ctx => func,
            _ => {
                let func = ctx_funcs[producer_ctx.index()];
                *producer_fn_memo = Some((producer_ctx, func));
                func
            }
        };
        // Same rule as the serial path: a last writer on another guest
        // thread is inter-thread input, disjoint from (and checked
        // before) the local class.
        let is_inter = producer.is_some_and(|p| p.thread != rec.thread);
        let is_local = !is_inter && producer.is_some() && producer_fn == rec.reader_fn;

        match (is_inter, is_local, repeat) {
            (true, _, false) => inter_unique += 1,
            (true, _, true) => inter_nonunique += 1,
            (false, true, false) => local_unique += 1,
            (false, true, true) => local_nonunique += 1,
            (false, false, false) => input_unique += 1,
            (false, false, true) => input_nonunique += 1,
        }
        if !is_local {
            match &mut producer_seg {
                Some((seg_ctx, seg)) if *seg_ctx == producer_ctx => {
                    if repeat {
                        seg.nonunique += 1;
                    } else {
                        seg.unique += 1;
                    }
                }
                seg_slot => {
                    if let Some((prev_ctx, prev_seg)) = seg_slot.take() {
                        SigilProfiler::flush_producer(comm, edges, prev_ctx, rec.ctx, prev_seg);
                    }
                    let mut seg = EdgeAccum::default();
                    if repeat {
                        seg.nonunique += 1;
                    } else {
                        seg.unique += 1;
                    }
                    *seg_slot = Some((producer_ctx, seg));
                }
            }
        }
        if !repeat && producer.is_some() && producer_call != rec.call {
            if events_on {
                match transfers.last_mut() {
                    Some((last_call, bytes)) if *last_call == producer_call => *bytes += 1,
                    _ => transfers.push((producer_call, 1)),
                }
            }
            if phases_on {
                match phase_transfers.last_mut() {
                    Some((last_ctx, bytes)) if *last_ctx == producer_ctx => *bytes += 1,
                    _ => phase_transfers.push((producer_ctx, 1)),
                }
            }
        }
    }

    if let Some((prev_ctx, prev_seg)) = producer_seg {
        SigilProfiler::flush_producer(comm, edges, prev_ctx, rec.ctx, prev_seg);
    }
    // `bytes_read` is tallied once per access on the dispatch thread;
    // the worker only contributes the per-byte classification.
    let consumer_stats = SigilProfiler::comm_entry(comm, rec.ctx);
    consumer_stats.local_unique_bytes += local_unique;
    consumer_stats.local_nonunique_bytes += local_nonunique;
    consumer_stats.input_unique_bytes += input_unique;
    consumer_stats.input_nonunique_bytes += input_nonunique;
    consumer_stats.inter_thread_unique_bytes += inter_unique;
    consumer_stats.inter_thread_nonunique_bytes += inter_nonunique;
    if !transfers.is_empty() {
        all_transfers
            .entry(rec.idx)
            .or_default()
            .push((rec.part, transfers));
    }
    if !phase_transfers.is_empty() {
        let builder = phases.as_mut().expect("phases on");
        for (producer_ctx, bytes) in phase_transfers {
            builder.record_transfer(producer_ctx, rec.ctx, rec.phase_at, bytes);
        }
    }
}

/// One write record: the serial `handle_write` per-byte loop
/// (`bytes_written` is tallied on the dispatch thread). A coalesced
/// write train replays as one run — every byte sees the same owner, so
/// sub-access boundaries are unobservable.
fn apply_write(state: &mut WorkerState, rec: AccessRecord) {
    let owner = Owner::new(rec.ctx.0, rec.call, rec.thread);
    let (slots, consumed) = state.table.run_mut(rec.addr, rec.len as usize);
    debug_assert_eq!(consumed, rec.len as usize, "records never straddle chunks");
    for obj in slots {
        if let Some(reuse_vec) = state.reuse.as_mut() {
            if let Some(prev_reader) = obj.last_reader {
                let info = obj.reuse;
                SigilProfiler::reuse_flush(reuse_vec, prev_reader, info);
            }
        }
        obj.record_write(owner);
    }
}

/// Replays the dispatcher's [`SeqOp`] log against simulated per-thread
/// frame stacks, splicing worker transfer segments back in access
/// order. Mirrors the serial emitter exactly: `push_compute` drops
/// zero-op fragments, `push_transfer` coalesces adjacent same-pair
/// records, a read's pending op is flushed before its transfers.
pub(crate) fn sequence_events(seq: Vec<SeqOp>, transfers: &mut TransferMap) -> EventFile {
    struct SimFrame {
        ctx: ContextId,
        call: CallNumber,
        pending: u64,
    }
    fn flush(events: &mut EventFile, stack: &mut [SimFrame]) {
        if let Some(frame) = stack.last_mut() {
            let ops = frame.pending;
            frame.pending = 0;
            events.push_compute(frame.call, frame.ctx, ops);
        }
    }

    let mut events = EventFile::new();
    let mut stacks: HashMap<u32, Vec<SimFrame>> = HashMap::new();
    let mut current: u32 = 0;
    for op in seq {
        let stack = stacks.entry(current).or_default();
        match op {
            SeqOp::Call { call, ctx } => {
                let parent_call = stack.last().map_or(CallNumber::ROOT, |f| f.call);
                flush(&mut events, stack);
                events.push_call(parent_call, call, ctx);
                stack.push(SimFrame {
                    ctx,
                    call,
                    pending: 0,
                });
            }
            SeqOp::Return => {
                flush(&mut events, stack);
                stack.pop();
            }
            SeqOp::Flush => flush(&mut events, stack),
            SeqOp::Switch { thread } => current = thread,
            SeqOp::Ops { count } => {
                if let Some(frame) = stack.last_mut() {
                    frame.pending += count;
                }
            }
            SeqOp::Read { idx } => {
                if let Some(frame) = stack.last_mut() {
                    frame.pending += 1;
                }
                if let Some(mut parts) = transfers.remove(&idx) {
                    let to_call = stack.last().map_or(CallNumber::ROOT, |f| f.call);
                    parts.sort_by_key(|&(part, _)| part);
                    flush(&mut events, stack);
                    for (_, segs) in parts {
                        for (from_call, bytes) in segs {
                            events.push_transfer(from_call, to_call, bytes);
                        }
                    }
                }
            }
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(ctx_reads: &[(usize, u64)], edges: &[(u32, u32, u64)]) -> ShardFragment {
        let mut comm = Vec::new();
        for &(idx, bytes) in ctx_reads {
            let stats = SigilProfiler::comm_entry(&mut comm, ContextId(idx as u32));
            stats.input_unique_bytes += bytes;
        }
        let mut edge_rows: Vec<CommEdge> = edges
            .iter()
            .map(|&(p, c, u)| CommEdge {
                producer: ContextId(p),
                consumer: ContextId(c),
                unique_bytes: u,
                nonunique_bytes: 0,
            })
            .collect();
        edge_rows.sort_by_key(|e| (e.producer, e.consumer));
        ShardFragment {
            comm,
            edges: edge_rows,
            reuse: None,
            phases: None,
            memory: MemoryStats::default(),
        }
    }

    #[test]
    fn fragment_merge_is_commutative() {
        let a = frag(&[(0, 4), (2, 8)], &[(0, 2, 8), (1, 2, 1)]);
        let b = frag(&[(1, 3)], &[(0, 2, 2)]);
        let c = frag(&[(2, 5)], &[(3, 1, 9)]);
        let abc = merge_fragments([a.clone(), b.clone(), c.clone()]);
        let cba = merge_fragments([c, b, a]);
        assert_eq!(abc, cba);
        assert_eq!(abc.comm[2].input_unique_bytes, 13);
        assert_eq!(abc.edges.len(), 3, "same-pair edges coalesce");
        assert!(abc
            .edges
            .windows(2)
            .all(|w| (w[0].producer, w[0].consumer) <= (w[1].producer, w[1].consumer)));
    }

    #[test]
    fn empty_fragment_is_identity() {
        let a = frag(&[(0, 4)], &[(0, 1, 4)]);
        let merged = merge_fragments([ShardFragment::default(), a.clone()]);
        assert_eq!(merged, merge_fragments([a]));
    }

    #[test]
    fn sequencer_reproduces_serial_emission_order() {
        // call main(1) → 3 ops → read with an 8-byte transfer from root
        // → 2 ops → return: the flush before the Transfer counts the 3
        // ops plus the read's own op; the trailing Compute counts the 2
        // ops after.
        let seq = vec![
            SeqOp::Call {
                call: CallNumber::from_raw(1),
                ctx: ContextId(1),
            },
            SeqOp::Ops { count: 3 },
            SeqOp::Read { idx: 0 },
            SeqOp::Ops { count: 2 },
            SeqOp::Return,
        ];
        let mut transfers = TransferMap::new();
        transfers.insert(0, vec![(0, vec![(CallNumber::ROOT, 8)])]);
        let events = sequence_events(seq, &mut transfers);
        use crate::events_out::EventRecord;
        let records = events.records();
        assert_eq!(records.len(), 4);
        assert!(matches!(records[0], EventRecord::Call { .. }));
        assert!(matches!(records[1], EventRecord::Compute { ops: 4, .. }));
        assert!(
            matches!(records[2], EventRecord::Transfer { bytes: 8, to_call, .. }
                if to_call == CallNumber::from_raw(1))
        );
        assert!(matches!(records[3], EventRecord::Compute { ops: 2, .. }));
    }

    #[test]
    fn sequencer_orders_straddling_parts_by_byte_order() {
        // Two parts arriving out of order must splice back in part order
        // and coalesce into one transfer record when the producer call
        // matches.
        let producer = CallNumber::from_raw(7);
        let seq = vec![
            SeqOp::Call {
                call: CallNumber::from_raw(9),
                ctx: ContextId(2),
            },
            SeqOp::Read { idx: 5 },
            SeqOp::Return,
        ];
        let mut transfers = TransferMap::new();
        transfers.insert(5, vec![(1, vec![(producer, 4)]), (0, vec![(producer, 12)])]);
        let events = sequence_events(seq, &mut transfers);
        use crate::events_out::EventRecord;
        let transfer_bytes: Vec<u64> = events
            .records()
            .iter()
            .filter_map(|r| match r {
                EventRecord::Transfer { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert_eq!(transfer_bytes, vec![16], "parts coalesce in byte order");
    }

    fn rec(write: bool, idx: u64, addr: Addr, len: u32, whole_read: bool) -> AccessRecord {
        AccessRecord {
            idx,
            part: 0,
            write,
            addr,
            len,
            count: 1,
            sub_len: if !write && whole_read { len } else { 0 },
            ctx: ContextId(3),
            call: CallNumber::from_raw(7),
            thread: 0,
            reader_fn: if write {
                None
            } else {
                Some(FunctionId::from_raw(2))
            },
            at: Timestamp::from_raw(100 + idx),
            phase_at: 200 + idx,
        }
    }

    #[test]
    fn writes_coalesce_in_both_modes_when_contiguous_and_same_owner() {
        let prev = rec(true, 0, 0x1000, 16, false);
        let next = rec(true, 1, 0x1010, 16, false);
        assert!(can_coalesce(ReadCoalesce::Free, &prev, &next));
        assert!(can_coalesce(ReadCoalesce::Strided, &prev, &next));

        let gap = rec(true, 1, 0x1018, 16, false);
        assert!(!can_coalesce(ReadCoalesce::Free, &prev, &gap), "gap");
        let mut other_call = next;
        other_call.call = CallNumber::from_raw(8);
        assert!(
            !can_coalesce(ReadCoalesce::Free, &prev, &other_call),
            "owner changed"
        );
        let mut other_thread = next;
        other_thread.thread = 1;
        assert!(
            !can_coalesce(ReadCoalesce::Free, &prev, &other_thread),
            "thread is part of the owner identity"
        );
        let read = rec(false, 1, 0x1010, 16, true);
        assert!(
            !can_coalesce(ReadCoalesce::Free, &prev, &read),
            "direction changed"
        );
    }

    #[test]
    fn strided_reads_require_the_exact_stride() {
        let prev = rec(false, 0, 0x1000, 16, true);
        let good = rec(false, 1, 0x1010, 16, true);
        assert!(can_coalesce(ReadCoalesce::Strided, &prev, &good));

        let mut wrong_len = good;
        wrong_len.len = 8;
        wrong_len.sub_len = 8;
        wrong_len.addr = 0x1010;
        assert!(
            !can_coalesce(ReadCoalesce::Strided, &prev, &wrong_len),
            "stride length changed"
        );

        let mut straddle_part = good;
        straddle_part.sub_len = 0;
        assert!(
            !can_coalesce(ReadCoalesce::Strided, &prev, &straddle_part),
            "straddle parts never merge in strided mode"
        );
        assert!(
            can_coalesce(ReadCoalesce::Free, &prev, &straddle_part),
            "but do in free mode"
        );

        let mut idx_gap = good;
        idx_gap.idx = 2;
        assert!(
            !can_coalesce(ReadCoalesce::Strided, &prev, &idx_gap),
            "an intervening access broke the index stride"
        );
        let mut time_gap = good;
        time_gap.at = Timestamp::from_raw(102);
        assert!(
            !can_coalesce(ReadCoalesce::Strided, &prev, &time_gap),
            "op clock advanced between the accesses"
        );
        let mut phase_gap = good;
        phase_gap.phase_at = 202;
        assert!(
            !can_coalesce(ReadCoalesce::Strided, &prev, &phase_gap),
            "phase clock advanced between the accesses"
        );
    }

    #[test]
    fn coalesced_train_extends_by_stride() {
        // After merging, the train's count/len admit exactly the next
        // stride element — the induction `can_coalesce` relies on.
        let mut train = rec(false, 0, 0x1000, 16, true);
        for k in 1..8u64 {
            let next = rec(false, k, 0x1000 + k * 16, 16, true);
            assert!(can_coalesce(ReadCoalesce::Strided, &train, &next));
            train.len += next.len;
            train.count += 1;
        }
        assert_eq!(train.count, 8);
        assert_eq!(train.len, 128);
        let off_stride = rec(false, 9, 0x1000 + 8 * 16, 16, true);
        assert!(
            !can_coalesce(ReadCoalesce::Strided, &train, &off_stride),
            "skipped index 8"
        );
    }

    #[test]
    fn route_stats_mirror_an_unbounded_table() {
        // The elided-oracle recurrence must match a real unbounded
        // ShadowTable driven through the identical access sequence.
        let accesses: &[(Addr, usize)] = &[
            (0x0000, 64),       // new chunk
            (0x0040, 64),       // MRU hit
            (0x0ff0, 64),       // straddles into chunk 1
            (0x0ff0, 64),       // straddle again: miss (MRU is chunk 1), then hit
            (0x2000, 1),        // new chunk 2
            (0x2000, 4096),     // whole chunk, MRU hit
            (0x0000, 3 * 4096), // spans chunks 0..3
        ];
        let mut table: ShadowTable<()> = ShadowTable::new();
        let mut route = RouteStats::default();
        for &(addr, len) in accesses {
            let mut a = addr;
            let mut remaining = len;
            while remaining > 0 {
                let (_, consumed) = table.run_mut(a, remaining);
                let (key, split) = chunk_run(a, remaining);
                assert_eq!(split, consumed, "chunk_run mirrors run_mut splitting");
                route.record_run(key, consumed as u64);
                a = a.wrapping_add(consumed as u64);
                remaining -= consumed;
            }
        }
        let stats = table.stats();
        assert_eq!(route.accesses, stats.accesses);
        assert_eq!(route.mru_hits, stats.mru_hits);
        assert_eq!(route.runs, stats.runs);
        assert_eq!(route.run_bytes, stats.run_bytes);
        assert_eq!(route.accesses - route.mru_hits, stats.table_probes);
    }

    #[test]
    fn engine_elides_the_oracle_exactly_when_unbounded() {
        let unbounded = SigilConfig::default().with_shards(2);
        assert!(ShardEngine::new(&unbounded).oracle_elided());
        let forced = unbounded.with_forced_dispatch_oracle();
        assert!(!ShardEngine::new(&forced).oracle_elided());
        let limited = SigilConfig::default().with_shards(2).with_shadow_limit(4);
        assert!(!ShardEngine::new(&limited).oracle_elided());
    }
}
