//! Communication counters and edges.

use serde::{map_get, Content, DeError, Deserialize, Serialize};
use sigil_callgrind::ContextId;

/// Per-context communication totals, classified along the paper's two
/// axes: input/output/local × unique/non-unique (§II-A), plus the
/// inter-thread axis: a read whose last writer ran on *another guest
/// thread* counts as inter-thread input, disjoint from the local and
/// same-thread-input classes.
///
/// All counters are in bytes.
///
/// Serialization is hand-written: the inter-thread counters are skipped
/// when zero (and default to zero when absent), so profiles of
/// single-threaded traces serialize byte-identically to the pre-thread
/// format — the golden corpus depends on this.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Bytes read whose producer is a *different* function on the same
    /// thread, first time this call reads them — the true input set.
    pub input_unique_bytes: u64,
    /// Bytes re-read from a different same-thread producer by the same
    /// call.
    pub input_nonunique_bytes: u64,
    /// Bytes read that this function itself produced on the same thread,
    /// first read.
    pub local_unique_bytes: u64,
    /// Re-reads of self-produced same-thread bytes.
    pub local_nonunique_bytes: u64,
    /// Bytes this context produced that another function consumed
    /// (first-time reads by the consumer) — the true output set.
    pub output_unique_bytes: u64,
    /// Re-reads by other functions of bytes this context produced.
    pub output_nonunique_bytes: u64,
    /// Bytes read whose last writer ran on another guest thread, first
    /// time this call reads them — cross-thread communication this
    /// context consumes. Zero (and absent from JSON) on single-threaded
    /// traces.
    pub inter_thread_unique_bytes: u64,
    /// Re-reads by the same call of bytes produced on another thread.
    pub inter_thread_nonunique_bytes: u64,
    /// Total bytes read (all classes).
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
}

impl CommStats {
    /// Unique bytes consumed, regardless of producer (input + local +
    /// inter-thread). This is the "total unique data bytes processed"
    /// measure used for Figure 9's function ranking.
    pub fn unique_bytes_consumed(&self) -> u64 {
        self.input_unique_bytes + self.local_unique_bytes + self.inter_thread_unique_bytes
    }

    /// Total non-unique (re-read) bytes.
    pub fn nonunique_bytes(&self) -> u64 {
        self.input_nonunique_bytes + self.local_nonunique_bytes + self.inter_thread_nonunique_bytes
    }

    /// Unique communication crossing the function boundary (the quantity
    /// the partitioning heuristic charges to an accelerator's bus).
    /// Inter-thread bytes cross the boundary by definition.
    pub fn boundary_unique_bytes(&self) -> u64 {
        self.input_unique_bytes + self.output_unique_bytes + self.inter_thread_unique_bytes
    }

    /// Unique bytes consumed across a thread boundary.
    pub fn inter_thread_bytes(&self) -> u64 {
        self.inter_thread_unique_bytes + self.inter_thread_nonunique_bytes
    }

    /// Component-wise accumulation.
    pub fn merge(&mut self, other: &CommStats) {
        self.input_unique_bytes += other.input_unique_bytes;
        self.input_nonunique_bytes += other.input_nonunique_bytes;
        self.local_unique_bytes += other.local_unique_bytes;
        self.local_nonunique_bytes += other.local_nonunique_bytes;
        self.output_unique_bytes += other.output_unique_bytes;
        self.output_nonunique_bytes += other.output_nonunique_bytes;
        self.inter_thread_unique_bytes += other.inter_thread_unique_bytes;
        self.inter_thread_nonunique_bytes += other.inter_thread_nonunique_bytes;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }
}

impl Serialize for CommStats {
    fn to_content(&self) -> Content {
        let mut entries = vec![
            (
                Content::Str("input_unique_bytes".into()),
                Content::U64(self.input_unique_bytes),
            ),
            (
                Content::Str("input_nonunique_bytes".into()),
                Content::U64(self.input_nonunique_bytes),
            ),
            (
                Content::Str("local_unique_bytes".into()),
                Content::U64(self.local_unique_bytes),
            ),
            (
                Content::Str("local_nonunique_bytes".into()),
                Content::U64(self.local_nonunique_bytes),
            ),
            (
                Content::Str("output_unique_bytes".into()),
                Content::U64(self.output_unique_bytes),
            ),
            (
                Content::Str("output_nonunique_bytes".into()),
                Content::U64(self.output_nonunique_bytes),
            ),
        ];
        // Skipped when zero so single-threaded profiles keep the
        // pre-thread serialization byte-for-byte.
        if self.inter_thread_unique_bytes != 0 {
            entries.push((
                Content::Str("inter_thread_unique_bytes".into()),
                Content::U64(self.inter_thread_unique_bytes),
            ));
        }
        if self.inter_thread_nonunique_bytes != 0 {
            entries.push((
                Content::Str("inter_thread_nonunique_bytes".into()),
                Content::U64(self.inter_thread_nonunique_bytes),
            ));
        }
        entries.push((
            Content::Str("bytes_read".into()),
            Content::U64(self.bytes_read),
        ));
        entries.push((
            Content::Str("bytes_written".into()),
            Content::U64(self.bytes_written),
        ));
        Content::Map(entries)
    }
}

impl Deserialize for CommStats {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let entries = content
            .as_map()
            .ok_or_else(|| DeError::unexpected("CommStats map", content))?;
        let field = |name: &str| -> Result<u64, DeError> {
            match map_get(entries, name) {
                Some(value) => u64::from_content(value),
                None => Ok(0),
            }
        };
        Ok(CommStats {
            input_unique_bytes: field("input_unique_bytes")?,
            input_nonunique_bytes: field("input_nonunique_bytes")?,
            local_unique_bytes: field("local_unique_bytes")?,
            local_nonunique_bytes: field("local_nonunique_bytes")?,
            output_unique_bytes: field("output_unique_bytes")?,
            output_nonunique_bytes: field("output_nonunique_bytes")?,
            inter_thread_unique_bytes: field("inter_thread_unique_bytes")?,
            inter_thread_nonunique_bytes: field("inter_thread_nonunique_bytes")?,
            bytes_read: field("bytes_read")?,
            bytes_written: field("bytes_written")?,
        })
    }
}

/// One directed data-dependency edge of the control data-flow graph:
/// `producer` wrote bytes that `consumer` later read.
///
/// These are the dashed edges of the paper's Figure 1, weighted by the
/// number of bytes needed by the receiving function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommEdge {
    /// The context that produced the data.
    pub producer: ContextId,
    /// The context that consumed it.
    pub consumer: ContextId,
    /// First-time-read bytes along this edge (the edge weight used for
    /// partitioning).
    pub unique_bytes: u64,
    /// Re-read bytes along this edge.
    pub nonunique_bytes: u64,
}

impl CommEdge {
    /// Total bytes transferred along this edge.
    pub fn total_bytes(&self) -> u64 {
        self.unique_bytes + self.nonunique_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_sums() {
        let stats = CommStats {
            input_unique_bytes: 10,
            input_nonunique_bytes: 3,
            local_unique_bytes: 5,
            local_nonunique_bytes: 2,
            output_unique_bytes: 7,
            output_nonunique_bytes: 1,
            bytes_read: 20,
            bytes_written: 12,
            ..CommStats::default()
        };
        assert_eq!(stats.unique_bytes_consumed(), 15);
        assert_eq!(stats.nonunique_bytes(), 5);
        assert_eq!(stats.boundary_unique_bytes(), 17);
    }

    #[test]
    fn merge_is_componentwise() {
        let mut a = CommStats {
            input_unique_bytes: 1,
            bytes_read: 1,
            ..CommStats::default()
        };
        let b = CommStats {
            input_unique_bytes: 2,
            output_unique_bytes: 4,
            bytes_read: 3,
            ..CommStats::default()
        };
        a.merge(&b);
        assert_eq!(a.input_unique_bytes, 3);
        assert_eq!(a.output_unique_bytes, 4);
        assert_eq!(a.bytes_read, 4);
    }

    #[test]
    fn inter_thread_fields_merge_and_sum() {
        let mut a = CommStats {
            inter_thread_unique_bytes: 8,
            inter_thread_nonunique_bytes: 2,
            input_unique_bytes: 1,
            ..CommStats::default()
        };
        let b = CommStats {
            inter_thread_unique_bytes: 4,
            ..CommStats::default()
        };
        a.merge(&b);
        assert_eq!(a.inter_thread_unique_bytes, 12);
        assert_eq!(a.inter_thread_bytes(), 14);
        assert_eq!(a.unique_bytes_consumed(), 13);
        assert_eq!(a.boundary_unique_bytes(), 13);
        assert_eq!(a.nonunique_bytes(), 2);
    }

    #[test]
    fn single_threaded_stats_serialize_without_inter_fields() {
        // Golden-corpus compatibility: the inter-thread counters must be
        // invisible in JSON when zero and round-trip when absent.
        let stats = CommStats {
            input_unique_bytes: 5,
            bytes_read: 5,
            ..CommStats::default()
        };
        let json = serde_json::to_string(&stats).expect("serializes");
        assert!(
            !json.contains("inter_thread"),
            "zero fields must be skipped: {json}"
        );
        let back: CommStats = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, stats);

        let mt = CommStats {
            inter_thread_unique_bytes: 3,
            ..stats
        };
        let json = serde_json::to_string(&mt).expect("serializes");
        assert!(json.contains("inter_thread_unique_bytes"));
        assert!(!json.contains("inter_thread_nonunique_bytes"));
        let back: CommStats = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, mt);
    }

    #[test]
    fn edge_total() {
        let edge = CommEdge {
            producer: ContextId(1),
            consumer: ContextId(2),
            unique_bytes: 8,
            nonunique_bytes: 4,
        };
        assert_eq!(edge.total_bytes(), 12);
    }
}
