//! Communication counters and edges.

use serde::{Deserialize, Serialize};
use sigil_callgrind::ContextId;

/// Per-context communication totals, classified along the paper's two
/// axes: input/output/local × unique/non-unique (§II-A).
///
/// All counters are in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Bytes read whose producer is a *different* function, first time
    /// this call reads them — the true input set.
    pub input_unique_bytes: u64,
    /// Bytes re-read from a different producer by the same call.
    pub input_nonunique_bytes: u64,
    /// Bytes read that this function itself produced, first read.
    pub local_unique_bytes: u64,
    /// Re-reads of self-produced bytes.
    pub local_nonunique_bytes: u64,
    /// Bytes this context produced that another function consumed
    /// (first-time reads by the consumer) — the true output set.
    pub output_unique_bytes: u64,
    /// Re-reads by other functions of bytes this context produced.
    pub output_nonunique_bytes: u64,
    /// Total bytes read (all classes).
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
}

impl CommStats {
    /// Unique bytes consumed, regardless of producer (input + local).
    /// This is the "total unique data bytes processed" measure used for
    /// Figure 9's function ranking.
    pub fn unique_bytes_consumed(&self) -> u64 {
        self.input_unique_bytes + self.local_unique_bytes
    }

    /// Total non-unique (re-read) bytes.
    pub fn nonunique_bytes(&self) -> u64 {
        self.input_nonunique_bytes + self.local_nonunique_bytes
    }

    /// Unique communication crossing the function boundary (the quantity
    /// the partitioning heuristic charges to an accelerator's bus).
    pub fn boundary_unique_bytes(&self) -> u64 {
        self.input_unique_bytes + self.output_unique_bytes
    }

    /// Component-wise accumulation.
    pub fn merge(&mut self, other: &CommStats) {
        self.input_unique_bytes += other.input_unique_bytes;
        self.input_nonunique_bytes += other.input_nonunique_bytes;
        self.local_unique_bytes += other.local_unique_bytes;
        self.local_nonunique_bytes += other.local_nonunique_bytes;
        self.output_unique_bytes += other.output_unique_bytes;
        self.output_nonunique_bytes += other.output_nonunique_bytes;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }
}

/// One directed data-dependency edge of the control data-flow graph:
/// `producer` wrote bytes that `consumer` later read.
///
/// These are the dashed edges of the paper's Figure 1, weighted by the
/// number of bytes needed by the receiving function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommEdge {
    /// The context that produced the data.
    pub producer: ContextId,
    /// The context that consumed it.
    pub consumer: ContextId,
    /// First-time-read bytes along this edge (the edge weight used for
    /// partitioning).
    pub unique_bytes: u64,
    /// Re-read bytes along this edge.
    pub nonunique_bytes: u64,
}

impl CommEdge {
    /// Total bytes transferred along this edge.
    pub fn total_bytes(&self) -> u64 {
        self.unique_bytes + self.nonunique_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_sums() {
        let stats = CommStats {
            input_unique_bytes: 10,
            input_nonunique_bytes: 3,
            local_unique_bytes: 5,
            local_nonunique_bytes: 2,
            output_unique_bytes: 7,
            output_nonunique_bytes: 1,
            bytes_read: 20,
            bytes_written: 12,
        };
        assert_eq!(stats.unique_bytes_consumed(), 15);
        assert_eq!(stats.nonunique_bytes(), 5);
        assert_eq!(stats.boundary_unique_bytes(), 17);
    }

    #[test]
    fn merge_is_componentwise() {
        let mut a = CommStats {
            input_unique_bytes: 1,
            bytes_read: 1,
            ..CommStats::default()
        };
        let b = CommStats {
            input_unique_bytes: 2,
            output_unique_bytes: 4,
            bytes_read: 3,
            ..CommStats::default()
        };
        a.merge(&b);
        assert_eq!(a.input_unique_bytes, 3);
        assert_eq!(a.output_unique_bytes, 4);
        assert_eq!(a.bytes_read, 4);
    }

    #[test]
    fn edge_total() {
        let edge = CommEdge {
            producer: ContextId(1),
            consumer: ContextId(2),
            unique_bytes: 8,
            nonunique_bytes: 4,
        };
        assert_eq!(edge.total_bytes(), 12);
    }
}
