//! Compact chunk-indexed binary event-file format (`SGEB`).
//!
//! The text format of [`crate::events_out`] is the human-readable
//! exchange representation; at production trace volume (billions of
//! records) it is both bulky (~27 bytes/record) and forces the
//! post-processing passes to hold the whole record list in memory. This
//! module defines the on-disk binary counterpart the streaming analyses
//! consume:
//!
//! * **Varint-delta records.** Each record is a tag byte plus LEB128
//!   varints; call numbers are zigzag-delta encoded against the previous
//!   record's call (calls are near-monotonic, so deltas are tiny).
//! * **Independently decodable chunks.** Records are grouped into chunks
//!   (default [`DEFAULT_CHUNK_RECORDS`] records); the delta baseline
//!   resets at every chunk boundary, so any chunk can be decoded without
//!   its predecessors. Each chunk is framed by a fixed header carrying
//!   its payload length, record count, and an FNV-1a checksum — the file
//!   is self-framing and sequentially streamable with memory bounded by
//!   one chunk.
//! * **Trailer index.** After the last chunk, a fixed-width index records
//!   every chunk's file offset, record count, call-record count, compute
//!   ops, and transfer bytes, followed by a footer with the index offset
//!   and whole-file totals. Readers over a byte slice (e.g. an mmap) can
//!   seek straight to the trailer, answer `stat` queries without touching
//!   a single record, and random-access any chunk.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header   "SGEB" | version u16 | flags u16 | chunk_target u32 | reserved u32
//! chunk*   0x01 | record_count u32 | payload_len u32 | fnv1a64 u64 | payload
//! index    0x02 | per chunk: offset u64 | record_count u32 | call_records u32
//!                            | compute_ops u64 | transfer_bytes u64
//! footer   index_offset u64 | chunk_count u64 | total_records u64 | "SGEBIDX\0"
//! ```
//!
//! Record payload encoding (per-chunk `prev` starts at 0):
//!
//! ```text
//! Call     0x00 zz(parent - prev) zz(call - prev) ctx          prev = call
//! Compute  0x01 zz(call - prev)   ctx             ops          prev = call
//! Transfer 0x02 zz(from - prev)   zz(to - from)   bytes        prev = to
//! ```
//!
//! Lossless round-trips with the text format are pinned by the
//! `events_roundtrip` proptests; decoding arbitrary byte soup returns a
//! located [`BinError`], never a panic.

use std::fmt;
use std::io::{self, Read, Write};

use sigil_callgrind::ContextId;
use sigil_trace::CallNumber;

use crate::events_out::{EventFile, EventRecord};

/// File magic, first four bytes.
pub const MAGIC: [u8; 4] = *b"SGEB";
/// Footer magic, last eight bytes.
pub const END_MAGIC: [u8; 8] = *b"SGEBIDX\0";
/// Current format version.
pub const VERSION: u16 = 1;
/// Default records per chunk.
pub const DEFAULT_CHUNK_RECORDS: usize = 4096;

/// Tag byte framing a chunk.
const TAG_CHUNK: u8 = 0x01;
/// Tag byte framing the trailer index.
const TAG_INDEX: u8 = 0x02;
/// Byte length of the fixed file header.
const HEADER_LEN: usize = 16;
/// Byte length of a chunk frame header (after the tag byte).
const CHUNK_HEADER_LEN: usize = 16;
/// Byte length of one trailer-index entry.
const INDEX_ENTRY_LEN: usize = 32;
/// Byte length of the footer.
const FOOTER_LEN: usize = 32;
/// Upper bound on a single chunk payload (corruption guard: never
/// allocate more than this from an untrusted length field). Public so
/// wire protocols framing SGEB chunk payloads enforce the same bound.
pub const MAX_PAYLOAD: u32 = 1 << 26;

/// A decode or I/O failure, located as precisely as the format allows.
#[derive(Debug)]
pub enum BinError {
    /// An underlying I/O error (file readers/writers only).
    Io(io::Error),
    /// Malformed bytes: absolute file `offset`, the chunk being decoded
    /// (`None` for header/trailer damage), and what went wrong.
    Format {
        /// Absolute byte offset of the damage.
        offset: u64,
        /// Index of the chunk being decoded, if any.
        chunk: Option<usize>,
        /// Human-readable description.
        message: String,
    },
}

impl BinError {
    fn format(offset: u64, chunk: Option<usize>, message: impl Into<String>) -> Self {
        BinError::Format {
            offset,
            chunk,
            message: message.into(),
        }
    }
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "event file I/O error: {e}"),
            BinError::Format {
                offset,
                chunk,
                message,
            } => match chunk {
                Some(c) => write!(
                    f,
                    "bad event file at offset {offset} (chunk {c}): {message}"
                ),
                None => write!(f, "bad event file at offset {offset}: {message}"),
            },
        }
    }
}

impl std::error::Error for BinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BinError::Io(e) => Some(e),
            BinError::Format { .. } => None,
        }
    }
}

impl From<io::Error> for BinError {
    fn from(e: io::Error) -> Self {
        BinError::Io(e)
    }
}

/// Per-chunk bookkeeping, as stored in the trailer index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkInfo {
    /// Absolute file offset of the chunk's tag byte.
    pub offset: u64,
    /// Records in the chunk.
    pub records: u32,
    /// How many of them are `Call` records.
    pub call_records: u32,
    /// Sum of `Compute::ops` in the chunk.
    pub compute_ops: u64,
    /// Sum of `Transfer::bytes` in the chunk.
    pub transfer_bytes: u64,
}

/// Whole-file totals, computable from the trailer index alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BinTotals {
    /// Number of chunks.
    pub chunks: u64,
    /// Total records.
    pub records: u64,
    /// Total `Call` records.
    pub call_records: u64,
    /// Total compute ops.
    pub compute_ops: u64,
    /// Total transfer bytes.
    pub transfer_bytes: u64,
}

impl BinTotals {
    fn accumulate(&mut self, info: &ChunkInfo) {
        self.chunks += 1;
        self.records += u64::from(info.records);
        self.call_records += u64::from(info.call_records);
        self.compute_ops += info.compute_ops;
        self.transfer_bytes += info.transfer_bytes;
    }
}

// ---------------------------------------------------------------------------
// Varint / zigzag primitives
// ---------------------------------------------------------------------------

/// Appends `value` as LEB128 to `out`.
fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-encodes a wrapping u64 difference so small ± deltas stay small.
fn zigzag(delta: u64) -> u64 {
    let d = delta as i64;
    ((d << 1) ^ (d >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(value: u64) -> u64 {
    ((value >> 1) as i64 ^ -((value & 1) as i64)) as u64
}

/// Cursor decoding varints from a chunk payload, reporting absolute file
/// offsets on damage.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    /// Absolute file offset of `data[0]`, for error locations.
    base: u64,
    chunk: usize,
}

impl Cursor<'_> {
    fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn byte(&mut self) -> Result<u8, BinError> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| BinError::format(self.offset(), Some(self.chunk), "truncated record"))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, BinError> {
        let start = self.offset();
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift == 63 && byte > 1 {
                return Err(BinError::format(
                    start,
                    Some(self.chunk),
                    "varint overflows u64",
                ));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(BinError::format(
                    start,
                    Some(self.chunk),
                    "varint longer than 10 bytes",
                ));
            }
        }
    }

    fn ctx(&mut self) -> Result<ContextId, BinError> {
        let start = self.offset();
        let raw = self.varint()?;
        let raw = u32::try_from(raw).map_err(|_| {
            BinError::format(
                start,
                Some(self.chunk),
                format!("context id {raw} out of range"),
            )
        })?;
        Ok(ContextId(raw))
    }
}

// ---------------------------------------------------------------------------
// Little-endian field helpers
// ---------------------------------------------------------------------------

fn read_u32(data: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes"))
}

fn read_u64(data: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"))
}

/// FNV-1a 64-bit over a chunk payload — cheap corruption detection.
fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encodes one record into `out`, advancing the delta baseline.
fn encode_record(out: &mut Vec<u8>, record: &EventRecord, prev_call: &mut u64) {
    match *record {
        EventRecord::Call {
            parent_call,
            call,
            ctx,
        } => {
            out.push(0);
            put_varint(out, zigzag(parent_call.as_raw().wrapping_sub(*prev_call)));
            put_varint(out, zigzag(call.as_raw().wrapping_sub(*prev_call)));
            put_varint(out, u64::from(ctx.0));
            *prev_call = call.as_raw();
        }
        EventRecord::Compute { call, ctx, ops } => {
            out.push(1);
            put_varint(out, zigzag(call.as_raw().wrapping_sub(*prev_call)));
            put_varint(out, u64::from(ctx.0));
            put_varint(out, ops);
            *prev_call = call.as_raw();
        }
        EventRecord::Transfer {
            from_call,
            to_call,
            bytes,
        } => {
            out.push(2);
            put_varint(out, zigzag(from_call.as_raw().wrapping_sub(*prev_call)));
            put_varint(
                out,
                zigzag(to_call.as_raw().wrapping_sub(from_call.as_raw())),
            );
            put_varint(out, bytes);
            *prev_call = to_call.as_raw();
        }
    }
}

/// Decodes one record from `cursor`, advancing the delta baseline.
fn decode_record(cursor: &mut Cursor<'_>, prev_call: &mut u64) -> Result<EventRecord, BinError> {
    let at = cursor.offset();
    let tag = cursor.byte()?;
    match tag {
        0 => {
            let parent = prev_call.wrapping_add(unzigzag(cursor.varint()?));
            let call = prev_call.wrapping_add(unzigzag(cursor.varint()?));
            let ctx = cursor.ctx()?;
            *prev_call = call;
            Ok(EventRecord::Call {
                parent_call: CallNumber::from_raw(parent),
                call: CallNumber::from_raw(call),
                ctx,
            })
        }
        1 => {
            let call = prev_call.wrapping_add(unzigzag(cursor.varint()?));
            let ctx = cursor.ctx()?;
            let ops = cursor.varint()?;
            *prev_call = call;
            Ok(EventRecord::Compute {
                call: CallNumber::from_raw(call),
                ctx,
                ops,
            })
        }
        2 => {
            let from = prev_call.wrapping_add(unzigzag(cursor.varint()?));
            let to = from.wrapping_add(unzigzag(cursor.varint()?));
            let bytes = cursor.varint()?;
            *prev_call = to;
            Ok(EventRecord::Transfer {
                from_call: CallNumber::from_raw(from),
                to_call: CallNumber::from_raw(to),
                bytes,
            })
        }
        other => Err(BinError::format(
            at,
            Some(cursor.chunk),
            format!("unknown record tag {other:#04x}"),
        )),
    }
}

// ---------------------------------------------------------------------------
// Standalone chunk-payload codec (wire reuse)
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit checksum as used over SGEB chunk payloads — exposed so
/// wire framings reusing the chunk encoding can carry the same checksum.
pub fn payload_checksum(data: &[u8]) -> u64 {
    fnv1a64(data)
}

/// Encodes `records` as one standalone SGEB chunk payload: the exact
/// byte encoding a [`BinWriter`] would emit for a chunk holding these
/// records (varint/zigzag-delta, per-chunk `prev_call` baseline of 0).
pub fn encode_chunk_payload(records: &[EventRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * 8);
    let mut prev_call = 0u64;
    for record in records {
        encode_record(&mut out, record, &mut prev_call);
    }
    out
}

/// Decodes one standalone SGEB chunk payload of exactly `records`
/// records, as produced by [`encode_chunk_payload`] (or cut from a
/// `.evb` file). Offsets in errors are payload-relative.
///
/// # Errors
///
/// Returns a located [`BinError`] on malformed records, a record count
/// mismatch, or trailing payload bytes.
pub fn decode_chunk_payload(payload: &[u8], records: u32) -> Result<Vec<EventRecord>, BinError> {
    let mut out = Vec::with_capacity(records as usize);
    let mut cursor = Cursor {
        data: payload,
        pos: 0,
        base: 0,
        chunk: 0,
    };
    let mut prev_call = 0u64;
    for _ in 0..records {
        out.push(decode_record(&mut cursor, &mut prev_call)?);
    }
    if cursor.pos != payload.len() {
        return Err(BinError::format(
            cursor.offset(),
            None,
            format!(
                "{} trailing payload bytes after the last record",
                payload.len() - cursor.pos
            ),
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming writer: push records one at a time; chunks flush at the
/// configured record count and the trailer index lands on [`finish`].
///
/// The encoder batches records into one reusable per-chunk buffer (the
/// chunk-run idiom: one sink write per chunk, not per record).
///
/// [`finish`]: BinWriter::finish
pub struct BinWriter<W: Write> {
    sink: W,
    /// Encoded payload of the chunk in progress (reused between chunks).
    buf: Vec<u8>,
    chunk_target: usize,
    /// Records in the chunk in progress.
    pending: ChunkInfo,
    prev_call: u64,
    index: Vec<ChunkInfo>,
    /// Bytes written to `sink` so far.
    offset: u64,
}

impl<W: Write> BinWriter<W> {
    /// Starts a file with the default chunk size. Writes the header
    /// immediately.
    ///
    /// # Errors
    ///
    /// Fails if the header cannot be written.
    pub fn new(sink: W) -> io::Result<Self> {
        Self::with_chunk_records(sink, DEFAULT_CHUNK_RECORDS)
    }

    /// Starts a file flushing a chunk every `chunk_records` records
    /// (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Fails if the header cannot be written.
    pub fn with_chunk_records(mut sink: W, chunk_records: usize) -> io::Result<Self> {
        let chunk_target = chunk_records.max(1);
        let mut header = [0u8; HEADER_LEN];
        header[..4].copy_from_slice(&MAGIC);
        header[4..6].copy_from_slice(&VERSION.to_le_bytes());
        // flags (6..8) reserved as zero.
        let target = u32::try_from(chunk_target.min(u32::MAX as usize)).expect("clamped");
        header[8..12].copy_from_slice(&target.to_le_bytes());
        sink.write_all(&header)?;
        Ok(BinWriter {
            sink,
            buf: Vec::with_capacity(64 * chunk_target.min(1 << 16)),
            chunk_target,
            pending: ChunkInfo::default(),
            prev_call: 0,
            index: Vec::new(),
            offset: HEADER_LEN as u64,
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Fails if a full chunk cannot be flushed to the sink.
    pub fn push(&mut self, record: &EventRecord) -> io::Result<()> {
        encode_record(&mut self.buf, record, &mut self.prev_call);
        self.pending.records += 1;
        match *record {
            EventRecord::Call { .. } => self.pending.call_records += 1,
            EventRecord::Compute { ops, .. } => self.pending.compute_ops += ops,
            EventRecord::Transfer { bytes, .. } => self.pending.transfer_bytes += bytes,
        }
        if self.pending.records as usize >= self.chunk_target {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Appends every record of an in-memory event file.
    ///
    /// # Errors
    ///
    /// Fails if a full chunk cannot be flushed to the sink.
    pub fn push_file(&mut self, events: &EventFile) -> io::Result<()> {
        for record in events.records() {
            self.push(record)?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.pending.records == 0 {
            return Ok(());
        }
        let payload_len = u32::try_from(self.buf.len()).expect("chunk payloads stay under 4 GiB");
        debug_assert!(
            payload_len <= MAX_PAYLOAD,
            "chunk target keeps payloads small"
        );
        let mut frame = [0u8; 1 + CHUNK_HEADER_LEN];
        frame[0] = TAG_CHUNK;
        frame[1..5].copy_from_slice(&self.pending.records.to_le_bytes());
        frame[5..9].copy_from_slice(&payload_len.to_le_bytes());
        frame[9..17].copy_from_slice(&fnv1a64(&self.buf).to_le_bytes());
        self.sink.write_all(&frame)?;
        self.sink.write_all(&self.buf)?;
        self.pending.offset = self.offset;
        self.index.push(self.pending);
        self.offset += frame.len() as u64 + u64::from(payload_len);
        self.pending = ChunkInfo::default();
        self.buf.clear();
        self.prev_call = 0;
        Ok(())
    }

    /// Flushes the final chunk, writes the trailer index and footer, and
    /// returns the whole-file totals alongside the sink.
    ///
    /// # Errors
    ///
    /// Fails if the trailer cannot be written.
    pub fn finish(mut self) -> io::Result<(BinTotals, W)> {
        self.flush_chunk()?;
        let index_offset = self.offset;
        let mut trailer = Vec::with_capacity(1 + self.index.len() * INDEX_ENTRY_LEN + FOOTER_LEN);
        trailer.push(TAG_INDEX);
        let mut totals = BinTotals::default();
        for info in &self.index {
            totals.accumulate(info);
            trailer.extend_from_slice(&info.offset.to_le_bytes());
            trailer.extend_from_slice(&info.records.to_le_bytes());
            trailer.extend_from_slice(&info.call_records.to_le_bytes());
            trailer.extend_from_slice(&info.compute_ops.to_le_bytes());
            trailer.extend_from_slice(&info.transfer_bytes.to_le_bytes());
        }
        trailer.extend_from_slice(&index_offset.to_le_bytes());
        trailer.extend_from_slice(&totals.chunks.to_le_bytes());
        trailer.extend_from_slice(&totals.records.to_le_bytes());
        trailer.extend_from_slice(&END_MAGIC);
        self.sink.write_all(&trailer)?;
        self.sink.flush()?;
        Ok((totals, self.sink))
    }

    /// Bytes written to the sink so far (excluding the unflushed chunk).
    pub fn bytes_written(&self) -> u64 {
        self.offset
    }
}

/// Encodes an in-memory event file to a byte vector.
pub fn encode_events(events: &EventFile) -> Vec<u8> {
    encode_events_chunked(events, DEFAULT_CHUNK_RECORDS)
}

/// Encodes with an explicit chunk size (tests and benches).
pub fn encode_events_chunked(events: &EventFile, chunk_records: usize) -> Vec<u8> {
    let mut writer = BinWriter::with_chunk_records(Vec::new(), chunk_records)
        .expect("writing to a Vec cannot fail");
    writer
        .push_file(events)
        .expect("writing to a Vec cannot fail");
    let (_, bytes) = writer.finish().expect("writing to a Vec cannot fail");
    bytes
}

/// Decodes a whole binary event file into memory.
///
/// # Errors
///
/// Returns a located [`BinError`] on any malformed byte.
pub fn decode_events(data: &[u8]) -> Result<EventFile, BinError> {
    BinReader::parse(data)?.to_event_file()
}

// ---------------------------------------------------------------------------
// Slice reader (mmap-style random access)
// ---------------------------------------------------------------------------

/// Random-access reader over a complete in-memory (or memory-mapped)
/// binary event file.
///
/// Parsing validates the header, footer, and trailer index; record
/// payloads are only decoded on demand, chunk by chunk.
pub struct BinReader<'a> {
    data: &'a [u8],
    index: Vec<ChunkInfo>,
    totals: BinTotals,
    /// Records per chunk the writer was configured with.
    chunk_target: u32,
}

impl<'a> BinReader<'a> {
    /// Parses the framing of a complete binary event file.
    ///
    /// # Errors
    ///
    /// Returns a located [`BinError`] if the header, footer, or index is
    /// malformed.
    pub fn parse(data: &'a [u8]) -> Result<Self, BinError> {
        if data.len() < HEADER_LEN + 1 + FOOTER_LEN {
            return Err(BinError::format(
                0,
                None,
                format!(
                    "file too short ({} bytes) for header and trailer",
                    data.len()
                ),
            ));
        }
        if data[..4] != MAGIC {
            return Err(BinError::format(0, None, "bad magic (not an SGEB file)"));
        }
        let version = u16::from_le_bytes([data[4], data[5]]);
        if version != VERSION {
            return Err(BinError::format(
                4,
                None,
                format!("unsupported version {version} (expected {VERSION})"),
            ));
        }
        let chunk_target = read_u32(data, 8);
        let footer_at = data.len() - FOOTER_LEN;
        if data[footer_at + 24..] != END_MAGIC {
            return Err(BinError::format(
                (footer_at + 24) as u64,
                None,
                "bad footer magic (truncated file?)",
            ));
        }
        let index_offset = read_u64(data, footer_at);
        let chunk_count = read_u64(data, footer_at + 8);
        let total_records = read_u64(data, footer_at + 16);
        let index_at = usize::try_from(index_offset)
            .ok()
            .filter(|&at| at >= HEADER_LEN && at < footer_at)
            .ok_or_else(|| {
                BinError::format(
                    footer_at as u64,
                    None,
                    format!("index offset {index_offset} out of bounds"),
                )
            })?;
        if data[index_at] != TAG_INDEX {
            return Err(BinError::format(
                index_at as u64,
                None,
                "index offset does not point at an index tag",
            ));
        }
        let entries = chunk_count as usize;
        let need = entries
            .checked_mul(INDEX_ENTRY_LEN)
            .map(|n| n + index_at + 1)
            .filter(|&end| end == footer_at)
            .ok_or_else(|| {
                BinError::format(
                    index_at as u64,
                    None,
                    format!("index length does not match {chunk_count} chunks"),
                )
            })?;
        debug_assert_eq!(need, footer_at);
        let mut index = Vec::with_capacity(entries);
        let mut totals = BinTotals::default();
        let mut expect_offset = HEADER_LEN as u64;
        for i in 0..entries {
            let at = index_at + 1 + i * INDEX_ENTRY_LEN;
            let info = ChunkInfo {
                offset: read_u64(data, at),
                records: read_u32(data, at + 8),
                call_records: read_u32(data, at + 12),
                compute_ops: read_u64(data, at + 16),
                transfer_bytes: read_u64(data, at + 24),
            };
            if info.offset != expect_offset {
                return Err(BinError::format(
                    at as u64,
                    Some(i),
                    format!(
                        "index offset {} disagrees with chunk layout (expected {expect_offset})",
                        info.offset
                    ),
                ));
            }
            let header_at = usize::try_from(info.offset)
                .ok()
                .filter(|&o| o + 1 + CHUNK_HEADER_LEN <= index_at)
                .ok_or_else(|| {
                    BinError::format(info.offset, Some(i), "chunk header out of bounds")
                })?;
            if data[header_at] != TAG_CHUNK {
                return Err(BinError::format(
                    info.offset,
                    Some(i),
                    "chunk offset does not point at a chunk tag",
                ));
            }
            let records = read_u32(data, header_at + 1);
            let payload_len = read_u32(data, header_at + 5);
            if records != info.records {
                return Err(BinError::format(
                    info.offset,
                    Some(i),
                    format!(
                        "chunk header record count {records} disagrees with index ({})",
                        info.records
                    ),
                ));
            }
            if payload_len > MAX_PAYLOAD {
                return Err(BinError::format(
                    info.offset,
                    Some(i),
                    format!("chunk payload length {payload_len} exceeds limit"),
                ));
            }
            let end = header_at + 1 + CHUNK_HEADER_LEN + payload_len as usize;
            if end > index_at {
                return Err(BinError::format(
                    info.offset,
                    Some(i),
                    "chunk payload overruns the trailer index",
                ));
            }
            expect_offset = end as u64;
            totals.accumulate(&info);
            index.push(info);
        }
        if expect_offset != index_at as u64 {
            return Err(BinError::format(
                expect_offset,
                None,
                "gap between last chunk and trailer index",
            ));
        }
        if totals.records != total_records {
            return Err(BinError::format(
                (footer_at + 16) as u64,
                None,
                format!(
                    "footer total {total_records} disagrees with index sum {}",
                    totals.records
                ),
            ));
        }
        Ok(BinReader {
            data,
            index,
            totals,
            chunk_target,
        })
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.index.len()
    }

    /// The trailer-index entries.
    pub fn index(&self) -> &[ChunkInfo] {
        &self.index
    }

    /// Whole-file totals (from the trailer index — no record decoding).
    pub fn totals(&self) -> BinTotals {
        self.totals
    }

    /// The writer's configured records-per-chunk target.
    pub fn chunk_target(&self) -> u32 {
        self.chunk_target
    }

    /// The raw payload slice of chunk `i` (checksum not yet verified).
    fn payload(&self, i: usize) -> Result<(&'a [u8], u64), BinError> {
        let info = self.index[i];
        let header_at = info.offset as usize;
        let payload_len = read_u32(self.data, header_at + 5) as usize;
        let start = header_at + 1 + CHUNK_HEADER_LEN;
        let payload = &self.data[start..start + payload_len];
        let checksum = read_u64(self.data, header_at + 9);
        if fnv1a64(payload) != checksum {
            return Err(BinError::format(
                info.offset,
                Some(i),
                "chunk checksum mismatch (corrupted payload)",
            ));
        }
        Ok((payload, start as u64))
    }

    /// Decodes chunk `i` into `out` (cleared first). The buffer can be
    /// reused across chunks so peak memory stays bounded by one chunk.
    ///
    /// # Errors
    ///
    /// Returns a located [`BinError`] on checksum mismatch or malformed
    /// records.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.chunk_count()`.
    pub fn decode_chunk_into(&self, i: usize, out: &mut Vec<EventRecord>) -> Result<(), BinError> {
        out.clear();
        let info = self.index[i];
        let (payload, base) = self.payload(i)?;
        out.reserve(info.records as usize);
        let mut cursor = Cursor {
            data: payload,
            pos: 0,
            base,
            chunk: i,
        };
        let mut prev_call = 0u64;
        for _ in 0..info.records {
            out.push(decode_record(&mut cursor, &mut prev_call)?);
        }
        if cursor.pos != payload.len() {
            return Err(BinError::format(
                cursor.offset(),
                Some(i),
                format!(
                    "{} trailing payload bytes after the last record",
                    payload.len() - cursor.pos
                ),
            ));
        }
        Ok(())
    }

    /// Streams every record, decoding lazily one chunk at a time.
    pub fn records(&self) -> Records<'a, '_> {
        Records {
            reader: self,
            chunk: 0,
            cursor: None,
            remaining: 0,
            prev_call: 0,
            failed: false,
        }
    }

    /// Decodes the whole file into an in-memory [`EventFile`].
    ///
    /// # Errors
    ///
    /// Returns a located [`BinError`] on any malformed chunk.
    pub fn to_event_file(&self) -> Result<EventFile, BinError> {
        let mut records = Vec::with_capacity(usize::try_from(self.totals.records).unwrap_or(0));
        for result in self.records() {
            records.push(result?);
        }
        Ok(EventFile::from_records(records))
    }

    /// Fully decodes every chunk and checks the per-chunk index entries
    /// and footer totals against the actual records.
    ///
    /// # Errors
    ///
    /// Returns a located [`BinError`] on any disagreement.
    pub fn verify(&self) -> Result<BinTotals, BinError> {
        let mut buf = Vec::new();
        for (i, info) in self.index.iter().enumerate() {
            self.decode_chunk_into(i, &mut buf)?;
            let mut scanned = ChunkInfo {
                offset: info.offset,
                ..ChunkInfo::default()
            };
            for record in &buf {
                scanned.records += 1;
                match *record {
                    EventRecord::Call { .. } => scanned.call_records += 1,
                    EventRecord::Compute { ops, .. } => scanned.compute_ops += ops,
                    EventRecord::Transfer { bytes, .. } => scanned.transfer_bytes += bytes,
                }
            }
            if scanned != *info {
                return Err(BinError::format(
                    info.offset,
                    Some(i),
                    format!("index entry {info:?} disagrees with scanned {scanned:?}"),
                ));
            }
        }
        Ok(self.totals)
    }
}

/// Streaming record iterator over a [`BinReader`].
pub struct Records<'a, 'r> {
    reader: &'r BinReader<'a>,
    chunk: usize,
    cursor: Option<Cursor<'a>>,
    remaining: u32,
    prev_call: u64,
    failed: bool,
}

impl Iterator for Records<'_, '_> {
    type Item = Result<EventRecord, BinError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        while self.remaining == 0 {
            if self.chunk >= self.reader.chunk_count() {
                return None;
            }
            let info = self.reader.index[self.chunk];
            match self.reader.payload(self.chunk) {
                Ok((payload, base)) => {
                    self.cursor = Some(Cursor {
                        data: payload,
                        pos: 0,
                        base,
                        chunk: self.chunk,
                    });
                    self.remaining = info.records;
                    self.prev_call = 0;
                    self.chunk += 1;
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        let cursor = self.cursor.as_mut().expect("cursor set with remaining > 0");
        self.remaining -= 1;
        match decode_record(cursor, &mut self.prev_call) {
            Ok(record) => {
                if self.remaining == 0 && cursor.pos != cursor.data.len() {
                    self.failed = true;
                    let err = BinError::format(
                        cursor.offset(),
                        Some(self.chunk - 1),
                        format!(
                            "{} trailing payload bytes after the last record",
                            cursor.data.len() - cursor.pos
                        ),
                    );
                    return Some(Err(err));
                }
                Some(Ok(record))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sequential file stream (bounded memory)
// ---------------------------------------------------------------------------

/// Sequential reader over any `Read` source: decodes one chunk at a time
/// into a reusable buffer, so peak memory is bounded by one chunk
/// regardless of trace length. On reaching the trailer it validates the
/// index and footer against everything streamed.
pub struct ChunkStream<R: Read> {
    source: R,
    /// Reusable payload buffer.
    payload: Vec<u8>,
    /// Reusable decoded-records buffer.
    records: Vec<EventRecord>,
    /// Per-chunk info accumulated while streaming (checked against the
    /// trailer index).
    seen: Vec<ChunkInfo>,
    offset: u64,
    done: bool,
}

impl<R: Read> ChunkStream<R> {
    /// Opens a stream, reading and validating the file header.
    ///
    /// # Errors
    ///
    /// Returns a located [`BinError`] if the header is malformed.
    pub fn new(mut source: R) -> Result<Self, BinError> {
        let mut header = [0u8; HEADER_LEN];
        source.read_exact(&mut header).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                BinError::format(0, None, "file too short for an SGEB header")
            } else {
                BinError::Io(e)
            }
        })?;
        if header[..4] != MAGIC {
            return Err(BinError::format(0, None, "bad magic (not an SGEB file)"));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != VERSION {
            return Err(BinError::format(
                4,
                None,
                format!("unsupported version {version} (expected {VERSION})"),
            ));
        }
        Ok(ChunkStream {
            source,
            payload: Vec::new(),
            records: Vec::new(),
            seen: Vec::new(),
            offset: HEADER_LEN as u64,
            done: false,
        })
    }

    /// Decodes the next chunk, returning its records (borrowed from the
    /// internal buffer), or `None` after the trailer validates clean.
    ///
    /// # Errors
    ///
    /// Returns a located [`BinError`] on I/O failure, corruption, or a
    /// trailer that disagrees with the streamed chunks.
    #[allow(clippy::should_implement_trait)] // lending iterator: items borrow self
    pub fn next_chunk(&mut self) -> Result<Option<&[EventRecord]>, BinError> {
        if self.done {
            return Ok(None);
        }
        let chunk_at = self.offset;
        let mut tag = [0u8; 1];
        self.source.read_exact(&mut tag).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                BinError::format(chunk_at, None, "truncated file: missing trailer index")
            } else {
                BinError::Io(e)
            }
        })?;
        match tag[0] {
            TAG_CHUNK => {}
            TAG_INDEX => {
                self.done = true;
                self.validate_trailer()?;
                return Ok(None);
            }
            other => {
                return Err(BinError::format(
                    chunk_at,
                    Some(self.seen.len()),
                    format!("expected a chunk or index tag, found {other:#04x}"),
                ));
            }
        }
        let chunk = self.seen.len();
        let mut header = [0u8; CHUNK_HEADER_LEN];
        self.read_fully(&mut header, chunk_at, chunk)?;
        let records = read_u32(&header, 0);
        let payload_len = read_u32(&header, 4);
        let checksum = read_u64(&header, 8);
        if payload_len > MAX_PAYLOAD {
            return Err(BinError::format(
                chunk_at,
                Some(chunk),
                format!("chunk payload length {payload_len} exceeds limit"),
            ));
        }
        self.payload.resize(payload_len as usize, 0);
        let mut payload = std::mem::take(&mut self.payload);
        let read = self.read_fully(&mut payload, chunk_at, chunk);
        self.payload = payload;
        read?;
        if fnv1a64(&self.payload) != checksum {
            return Err(BinError::format(
                chunk_at,
                Some(chunk),
                "chunk checksum mismatch (corrupted payload)",
            ));
        }
        self.records.clear();
        self.records.reserve(records as usize);
        let mut cursor = Cursor {
            data: &self.payload,
            pos: 0,
            base: chunk_at + 1 + CHUNK_HEADER_LEN as u64,
            chunk,
        };
        let mut info = ChunkInfo {
            offset: chunk_at,
            ..ChunkInfo::default()
        };
        let mut prev_call = 0u64;
        for _ in 0..records {
            let record = decode_record(&mut cursor, &mut prev_call)?;
            info.records += 1;
            match record {
                EventRecord::Call { .. } => info.call_records += 1,
                EventRecord::Compute { ops, .. } => info.compute_ops += ops,
                EventRecord::Transfer { bytes, .. } => info.transfer_bytes += bytes,
            }
            self.records.push(record);
        }
        if cursor.pos != self.payload.len() {
            return Err(BinError::format(
                cursor.offset(),
                Some(chunk),
                format!(
                    "{} trailing payload bytes after the last record",
                    self.payload.len() - cursor.pos
                ),
            ));
        }
        self.seen.push(info);
        self.offset = chunk_at + 1 + CHUNK_HEADER_LEN as u64 + u64::from(payload_len);
        Ok(Some(&self.records))
    }

    fn read_fully(&mut self, buf: &mut [u8], chunk_at: u64, chunk: usize) -> Result<(), BinError> {
        self.source.read_exact(buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                BinError::format(chunk_at, Some(chunk), "truncated chunk")
            } else {
                BinError::Io(e)
            }
        })
    }

    /// Reads the trailer index + footer and checks them against every
    /// streamed chunk — the "trailer totals match a full scan" contract.
    fn validate_trailer(&mut self) -> Result<(), BinError> {
        let index_at = self.offset;
        let mut totals = BinTotals::default();
        for (i, info) in self.seen.iter().enumerate() {
            let mut entry = [0u8; INDEX_ENTRY_LEN];
            self.source.read_exact(&mut entry).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    BinError::format(index_at, None, "truncated trailer index")
                } else {
                    BinError::Io(e)
                }
            })?;
            let stored = ChunkInfo {
                offset: read_u64(&entry, 0),
                records: read_u32(&entry, 8),
                call_records: read_u32(&entry, 12),
                compute_ops: read_u64(&entry, 16),
                transfer_bytes: read_u64(&entry, 24),
            };
            if stored != *info {
                return Err(BinError::format(
                    index_at,
                    Some(i),
                    format!("index entry {stored:?} disagrees with streamed chunk {info:?}"),
                ));
            }
            totals.accumulate(&stored);
        }
        let mut footer = [0u8; FOOTER_LEN];
        self.source.read_exact(&mut footer).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                BinError::format(index_at, None, "truncated footer")
            } else {
                BinError::Io(e)
            }
        })?;
        if footer[24..] != END_MAGIC {
            return Err(BinError::format(index_at, None, "bad footer magic"));
        }
        let index_offset = read_u64(&footer, 0);
        let chunk_count = read_u64(&footer, 8);
        let total_records = read_u64(&footer, 16);
        if index_offset != index_at
            || chunk_count != totals.chunks
            || total_records != totals.records
        {
            return Err(BinError::format(
                index_at,
                None,
                format!(
                    "footer (index {index_offset}, {chunk_count} chunks, {total_records} records) \
                     disagrees with streamed totals (index {index_at}, {} chunks, {} records)",
                    totals.chunks, totals.records
                ),
            ));
        }
        Ok(())
    }

    /// Streamed totals so far (complete once `next_chunk` returned
    /// `None`).
    pub fn totals(&self) -> BinTotals {
        let mut totals = BinTotals::default();
        for info in &self.seen {
            totals.accumulate(info);
        }
        totals
    }

    /// Drives the stream to completion, applying `f` to every record.
    ///
    /// # Errors
    ///
    /// Returns the first decode/trailer error.
    pub fn for_each<F: FnMut(&EventRecord)>(mut self, mut f: F) -> Result<BinTotals, BinError> {
        while let Some(records) = self.next_chunk()? {
            for record in records {
                f(record);
            }
        }
        Ok(self.totals())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(n: u64) -> CallNumber {
        CallNumber::from_raw(n)
    }

    fn sample() -> EventFile {
        let mut f = EventFile::new();
        f.push_call(CallNumber::ROOT, call(1), ContextId(1));
        f.push_compute(call(1), ContextId(1), 42);
        f.push_call(call(1), call(2), ContextId(2));
        f.push_compute(call(2), ContextId(2), 7);
        f.push_transfer(call(1), call(2), 16);
        f.push_transfer(call(2), call(1), u64::from(u32::MAX) + 5);
        f.push_compute(call(1), ContextId(1), 1);
        f
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        for value in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, value);
            let mut cursor = Cursor {
                data: &buf,
                pos: 0,
                base: 0,
                chunk: 0,
            };
            assert_eq!(cursor.varint().expect("valid"), value);
            assert_eq!(cursor.pos, buf.len());
        }
        for delta in [0u64, 1, u64::MAX, u64::MAX - 3, 1 << 40] {
            assert_eq!(unzigzag(zigzag(delta)), delta);
        }
    }

    #[test]
    fn standalone_chunk_payload_matches_writer_bytes() {
        let file = sample();
        // One chunk holding everything: the standalone payload must be
        // byte-identical to the BinWriter's chunk payload.
        let bytes = encode_events_chunked(&file, file.len());
        let payload = encode_chunk_payload(file.records());
        let chunk_start = HEADER_LEN + 1 + CHUNK_HEADER_LEN;
        assert_eq!(&bytes[chunk_start..chunk_start + payload.len()], &payload);
        let stored_checksum = read_u64(&bytes, HEADER_LEN + 9);
        assert_eq!(payload_checksum(&payload), stored_checksum);
        let decoded = decode_chunk_payload(&payload, file.len() as u32).expect("standalone decode");
        assert_eq!(decoded.as_slice(), file.records());
        // Count mismatches and trailing bytes are located errors.
        assert!(decode_chunk_payload(&payload, file.len() as u32 + 1).is_err());
        assert!(decode_chunk_payload(&payload, file.len() as u32 - 1).is_err());
    }

    #[test]
    fn encode_decode_round_trips() {
        let file = sample();
        let bytes = encode_events(&file);
        let decoded = decode_events(&bytes).expect("valid file");
        assert_eq!(decoded, file);
    }

    #[test]
    fn empty_file_round_trips() {
        let file = EventFile::new();
        let bytes = encode_events(&file);
        let reader = BinReader::parse(&bytes).expect("valid file");
        assert_eq!(reader.chunk_count(), 0);
        assert_eq!(reader.totals().records, 0);
        assert_eq!(reader.to_event_file().expect("decodes"), file);
    }

    #[test]
    fn small_chunks_split_and_round_trip() {
        let file = sample();
        let bytes = encode_events_chunked(&file, 2);
        let reader = BinReader::parse(&bytes).expect("valid file");
        assert_eq!(reader.chunk_count(), file.len().div_ceil(2));
        assert_eq!(reader.to_event_file().expect("decodes"), file);
        // Each chunk decodes on its own (delta baseline resets).
        let mut buf = Vec::new();
        let mut all = Vec::new();
        for i in 0..reader.chunk_count() {
            reader
                .decode_chunk_into(i, &mut buf)
                .expect("chunk decodes");
            all.extend_from_slice(&buf);
        }
        assert_eq!(all.as_slice(), file.records());
    }

    #[test]
    fn trailer_index_matches_scan() {
        let file = sample();
        let bytes = encode_events_chunked(&file, 3);
        let reader = BinReader::parse(&bytes).expect("valid file");
        let totals = reader.verify().expect("index consistent");
        assert_eq!(totals.records, file.len() as u64);
        assert_eq!(totals.compute_ops, file.total_ops());
        assert_eq!(totals.transfer_bytes, file.total_transfer_bytes());
        assert_eq!(
            totals.call_records,
            file.records()
                .iter()
                .filter(|r| matches!(r, EventRecord::Call { .. }))
                .count() as u64
        );
    }

    #[test]
    fn chunk_stream_matches_slice_reader() {
        let file = sample();
        let bytes = encode_events_chunked(&file, 2);
        let mut stream = ChunkStream::new(bytes.as_slice()).expect("valid header");
        let mut streamed = Vec::new();
        while let Some(records) = stream.next_chunk().expect("clean chunks") {
            streamed.extend_from_slice(records);
        }
        assert_eq!(streamed.as_slice(), file.records());
        assert_eq!(stream.totals().records, file.len() as u64);
        // Second call after the trailer stays None.
        assert!(stream.next_chunk().expect("done").is_none());
    }

    #[test]
    fn truncation_is_a_located_error() {
        let bytes = encode_events_chunked(&sample(), 2);
        for cut in 0..bytes.len() {
            let truncated = &bytes[..cut];
            assert!(BinReader::parse(truncated).is_err(), "cut at {cut}");
            let mut decoded = 0usize;
            match ChunkStream::new(truncated) {
                Err(_) => {}
                Ok(mut stream) => loop {
                    match stream.next_chunk() {
                        Ok(Some(records)) => decoded += records.len(),
                        // A truncated trailer must never validate clean.
                        Ok(None) => panic!("cut at {cut} streamed clean"),
                        Err(BinError::Format { .. }) => break,
                        Err(BinError::Io(e)) => panic!("io error at {cut}: {e}"),
                    }
                },
            }
            assert!(decoded <= sample().len());
        }
    }

    #[test]
    fn payload_corruption_is_detected() {
        let file = sample();
        let mut bytes = encode_events_chunked(&file, 64);
        // Flip one byte inside the first chunk's payload.
        let at = HEADER_LEN + 1 + CHUNK_HEADER_LEN;
        bytes[at] ^= 0x40;
        let reader = BinReader::parse(&bytes).expect("framing intact");
        let err = reader.to_event_file().expect_err("checksum must trip");
        let BinError::Format { chunk, message, .. } = err else {
            panic!("expected format error");
        };
        assert_eq!(chunk, Some(0));
        assert!(message.contains("checksum"), "{message}");
    }

    #[test]
    fn writer_streams_identically_to_encode() {
        let file = sample();
        let mut writer = BinWriter::with_chunk_records(Vec::new(), 3).expect("vec");
        for record in file.records() {
            writer.push(record).expect("vec");
        }
        let (totals, bytes) = writer.finish().expect("vec");
        assert_eq!(bytes, encode_events_chunked(&file, 3));
        assert_eq!(totals.records, file.len() as u64);
        assert_eq!(totals.compute_ops, file.total_ops());
        assert_eq!(totals.transfer_bytes, file.total_transfer_bytes());
    }

    #[test]
    fn stat_needs_no_record_decoding() {
        let file = sample();
        let mut bytes = encode_events_chunked(&file, 2);
        // Corrupt a payload byte: the trailer-only queries still work.
        let clean_totals = BinReader::parse(&bytes).expect("valid").totals();
        let payload_start = HEADER_LEN + 1 + CHUNK_HEADER_LEN;
        bytes[payload_start] ^= 0xff;
        let reader2 = BinReader::parse(&bytes).expect("framing still valid");
        assert_eq!(reader2.totals(), clean_totals);
        assert!(reader2.to_event_file().is_err(), "decode must fail");
    }

    #[test]
    fn binary_is_much_smaller_than_text() {
        let mut f = EventFile::new();
        let mut call_no = 1u64;
        for i in 0..10_000u64 {
            if i % 10 == 0 {
                f.push_call(call(call_no), call(call_no + 1), ContextId((i % 64) as u32));
                call_no += 1;
            }
            f.push_compute(call(call_no), ContextId((i % 64) as u32), 1 + i % 5000);
            if i % 3 == 0 {
                f.push_transfer(call(call_no.saturating_sub(1)), call(call_no), 8 + i % 512);
            }
        }
        let text = f.to_text();
        let bin = encode_events(&f);
        let ratio = text.len() as f64 / bin.len() as f64;
        assert!(ratio >= 3.0, "size ratio {ratio:.2} below 3x");
    }
}
