//! The Sigil profiler observer.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sigil_callgrind::{CallgrindProfiler, ContextId};
use sigil_mem::{LineShadow, MemoryStats, Owner, ShadowObject, ShadowTable};
use sigil_trace::{
    CallNumber, ExecutionObserver, FunctionId, MemAccess, OpClock, RuntimeEvent, SymbolTable,
    Timestamp,
};

use crate::config::SigilConfig;
use crate::events_out::EventFile;
use crate::phase::{PhaseBuilder, PhaseProfile};
use crate::profile::{ContextComm, Profile};
use crate::reuse::ContextReuse;
use crate::shard::{sequence_events, ShardEngine, ShardFragment};
use crate::stats::{CommEdge, CommStats};

#[derive(Debug, Clone, Copy)]
struct Frame {
    ctx: ContextId,
    call: CallNumber,
    /// Retired ops since this frame's last flushed compute fragment.
    pending_ops: u64,
}

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EdgeAccum {
    pub(crate) unique: u64,
    pub(crate) nonunique: u64,
}

/// Aggregated line-granularity reuse report (drives Figure 12).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineReport {
    /// Configured cache-line size in bytes.
    pub line_size: u32,
    /// Lines bucketed by reuse count: `<10`, `<100`, `<1000`, `<10000`,
    /// `>=10000` (the paper's Figure 12 legend).
    pub buckets: [u64; 5],
    /// Total distinct lines touched.
    pub touched_lines: u64,
}

impl LineReport {
    /// Figure 12 bucket labels, in stacking order.
    pub const LABELS: [&'static str; 5] = ["<10", "<100", "<1000", "<10000", ">10000"];

    /// Bucket index for a line's reuse count.
    pub const fn bucket_of(reuse_count: u64) -> usize {
        match reuse_count {
            0..=9 => 0,
            10..=99 => 1,
            100..=999 => 2,
            1000..=9999 => 3,
            _ => 4,
        }
    }
}

/// The pieces `into_profile` assembles, from either finish path.
type ProfileParts = (
    MemoryStats,
    Vec<CommStats>,
    Vec<CommEdge>,
    Option<Vec<ContextReuse>>,
    Option<EventFile>,
    Option<PhaseProfile>,
);

/// The Sigil profiler: an [`ExecutionObserver`] that shadows every data
/// byte to classify communication (see the crate docs for the
/// methodology).
///
/// Internally it embeds a [`CallgrindProfiler`] — Sigil "hooks into
/// Callgrind to identify function names, obtain addresses and count
/// operations" — and layers the shadow-memory pass on top.
#[derive(Debug)]
pub struct SigilProfiler {
    config: SigilConfig,
    cg: CallgrindProfiler,
    shadow: ShadowTable<ShadowObject>,
    lines: Option<LineShadow>,
    clock: OpClock,
    call_counter: CallNumber,
    /// Per-thread frame stacks; key is the raw thread id.
    thread_frames: HashMap<u32, Vec<Frame>>,
    current_thread: u32,
    comm: Vec<CommStats>,
    edges: HashMap<(ContextId, ContextId), EdgeAccum>,
    reuse: Option<Vec<ContextReuse>>,
    events: Option<EventFile>,
    /// Phase-sliced profile builder (present when phase collection is
    /// on). In sharded mode this dispatch-side builder tallies calls;
    /// transfers come back in the workers' fragments.
    phases: Option<PhaseBuilder>,
    /// The phase clock: cumulative event-stream-visible retired ops
    /// (see [`crate::phase`] for the exact tick rules).
    phase_clock: u64,
    /// Present when `config.shards > 1`: per-byte classification runs on
    /// worker threads and `shadow` stays empty (see [`crate::shard`]).
    engine: Option<ShardEngine>,
}

impl SigilProfiler {
    /// Creates a profiler with the given configuration.
    pub fn new(config: SigilConfig) -> Self {
        let sharded = config.shards > 1;
        SigilProfiler {
            config,
            cg: CallgrindProfiler::new(config.callgrind),
            // In sharded mode the per-byte state lives in the worker
            // tables and the dispatch-side residency oracle; this table
            // stays empty.
            shadow: match config.shadow_chunk_limit {
                Some(limit) if !sharded => ShadowTable::with_chunk_limit(limit, config.eviction),
                _ => ShadowTable::new(),
            },
            lines: config.line_size.map(LineShadow::new),
            clock: OpClock::new(),
            call_counter: CallNumber::ROOT,
            thread_frames: HashMap::from([(0, Vec::with_capacity(64))]),
            current_thread: 0,
            comm: Vec::new(),
            edges: HashMap::new(),
            reuse: config.reuse_mode.then(Vec::new),
            // Sharded event files are sequenced from the dispatch log at
            // the end of the run instead of being built incrementally.
            events: (config.record_events && !sharded).then(EventFile::new),
            phases: config.phase_bucket_ops.map(PhaseBuilder::new),
            phase_clock: 0,
            engine: sharded.then(|| ShardEngine::new(&config)),
        }
    }

    /// The configuration this profiler runs with.
    pub fn config(&self) -> SigilConfig {
        self.config
    }

    /// Current shadow-memory footprint.
    ///
    /// In sharded mode with a shadow limit this reports the
    /// dispatch-side residency oracle, which replays the exact serial
    /// run sequence — so the counters equal serial replay's regardless
    /// of worker scheduling. Unbounded sharded runs elide the oracle:
    /// the access counters stay exact, while mid-run residency comes
    /// from the workers' per-batch snapshots (it may lag in-flight
    /// batches; the finished profile's stats are exact).
    pub fn memory_stats(&self) -> MemoryStats {
        let byte_stats = match &self.engine {
            Some(engine) => engine.memory_stats(),
            None => self.shadow.stats(),
        };
        match &self.lines {
            Some(lines) => byte_stats.combined(lines.memory_stats()),
            None => byte_stats,
        }
    }

    /// A point-in-time snapshot of the phase-sliced profile built so
    /// far, for live queries against an in-progress run. `None` when
    /// phase collection is off or the profiler is sharded (sharded
    /// replay assembles phases only at finish).
    pub fn phase_snapshot(&self) -> Option<crate::phase::PhaseProfile> {
        if self.engine.is_some() {
            return None;
        }
        self.phases.as_ref().map(|b| b.clone().finish())
    }

    fn frames(&self) -> Option<&Vec<Frame>> {
        self.thread_frames.get(&self.current_thread)
    }

    fn frames_mut(&mut self) -> &mut Vec<Frame> {
        self.thread_frames.entry(self.current_thread).or_default()
    }

    fn current_frame(&self) -> Frame {
        self.frames()
            .and_then(|f| f.last().copied())
            .unwrap_or(Frame {
                ctx: ContextId::ROOT,
                call: CallNumber::ROOT,
                pending_ops: 0,
            })
    }

    fn comm_mut(&mut self, ctx: ContextId) -> &mut CommStats {
        Self::comm_entry(&mut self.comm, ctx)
    }

    /// Field-level variant of [`comm_mut`](Self::comm_mut) usable while
    /// `self.shadow` is mutably borrowed by a run iterator.
    pub(crate) fn comm_entry(comm: &mut Vec<CommStats>, ctx: ContextId) -> &mut CommStats {
        let idx = ctx.index();
        if idx >= comm.len() {
            comm.resize(idx + 1, CommStats::default());
        }
        &mut comm[idx]
    }

    /// Flushes one producer segment — a maximal stretch of consecutive
    /// bytes sharing a last-writer context — into the producer's output
    /// tallies and the producer→consumer edge map.
    pub(crate) fn flush_producer(
        comm: &mut Vec<CommStats>,
        edges: &mut HashMap<(ContextId, ContextId), EdgeAccum>,
        producer_ctx: ContextId,
        consumer_ctx: ContextId,
        seg: EdgeAccum,
    ) {
        let producer_stats = Self::comm_entry(comm, producer_ctx);
        producer_stats.output_unique_bytes += seg.unique;
        producer_stats.output_nonunique_bytes += seg.nonunique;
        let edge = edges.entry((producer_ctx, consumer_ctx)).or_default();
        edge.unique += seg.unique;
        edge.nonunique += seg.nonunique;
    }

    pub(crate) fn reuse_flush(
        reuse_vec: &mut Vec<ContextReuse>,
        reader: Owner,
        info: sigil_mem::ReuseInfo,
    ) {
        let idx = reader.ctx as usize;
        while reuse_vec.len() <= idx {
            let next = ContextId(u32::try_from(reuse_vec.len()).expect("context count fits u32"));
            reuse_vec.push(ContextReuse::new(next));
        }
        reuse_vec[idx].record(info.reuse_count, info.lifetime());
    }

    fn flush_pending(&mut self) {
        if self.events.is_none() {
            return;
        }
        if let Some(frame) = self.frames_mut().last_mut() {
            let ops = frame.pending_ops;
            frame.pending_ops = 0;
            let (call, ctx) = (frame.call, frame.ctx);
            if let Some(events) = self.events.as_mut() {
                events.push_compute(call, ctx, ops);
            }
        }
    }

    fn handle_enter(&mut self) {
        // `cg` has already entered the new context.
        let ctx = self.cg.current_context();
        self.call_counter = self.call_counter.next();
        let call = self.call_counter;
        let parent = self.current_frame();
        self.flush_pending();
        if let Some(events) = self.events.as_mut() {
            events.push_call(parent.call, call, ctx);
        }
        if let Some(builder) = self.phases.as_mut() {
            // The call is tallied at the pre-tick clock.
            builder.record_call(parent.ctx, ctx, self.phase_clock);
        }
        // The Call record itself retires one op and is always visible in
        // the event stream, so it always ticks the phase clock.
        self.phase_clock += 1;
        self.frames_mut().push(Frame {
            ctx,
            call,
            pending_ops: 0,
        });
    }

    /// Retires `count` ops into the open frame's pending fragment and
    /// ticks the phase clock. With no open frame both drop the ops —
    /// exactly like the event sequencer, so the phase clock stays
    /// reconstructible from the event stream.
    fn retire_pending(&mut self, count: u64) {
        let Some(f) = self.frames_mut().last_mut() else {
            return;
        };
        f.pending_ops += count;
        self.phase_clock += count;
    }

    fn handle_leave(&mut self) {
        self.flush_pending();
        self.frames_mut().pop();
    }

    fn handle_read(&mut self, access: MemAccess, at: Timestamp) {
        if access.is_empty() {
            return;
        }
        // Loop invariants, hoisted: the consuming frame, its shadow owner
        // tag, and the reader's function identity are fixed for the whole
        // access.
        let frame = self.current_frame();
        let thread = self.current_thread;
        let owner = Owner::new(frame.ctx.0, frame.call, thread);
        let reader_fn = self.cg.tree().node(frame.ctx).func;
        if let Some(lines) = self.lines.as_mut() {
            lines.record_access(access, at);
        }
        self.retire_pending(1);

        // Consumer tallies accumulate locally and flush once per access;
        // producer tallies flush once per segment of consecutive bytes
        // sharing a last-writer context (overwhelmingly the whole access).
        let mut local_unique = 0u64;
        let mut local_nonunique = 0u64;
        let mut input_unique = 0u64;
        let mut input_nonunique = 0u64;
        let mut inter_unique = 0u64;
        let mut inter_nonunique = 0u64;
        let mut producer_seg: Option<(ContextId, EdgeAccum)> = None;
        // Producer-function resolution memoized on the producer context:
        // consecutive bytes overwhelmingly share one last writer.
        let mut producer_fn_memo: Option<(ContextId, Option<FunctionId>)> = None;
        // Transfer segments (producer call, bytes), contiguous in byte
        // order so `push_transfer` coalescing reproduces the per-byte
        // event stream exactly.
        let mut transfers: Vec<(CallNumber, u64)> = Vec::new();
        let events_on = self.events.is_some();
        // Phase-profile transfer segments (producer context, bytes) —
        // kept apart from `transfers`: phases stay on when event
        // recording is off, and bucket by producer *context*.
        let mut phase_transfers: Vec<(ContextId, u64)> = Vec::new();
        let phases_on = self.phases.is_some();

        // `runs` holds a mutable borrow of `self.shadow`; the loop body
        // may only touch the disjoint fields `self.cg` / `self.reuse` /
        // `self.comm` / `self.edges` — anything needing `&mut self`
        // (event emission, pending-op flush) is deferred past the loop.
        let tree = self.cg.tree();
        let mut runs = self.shadow.runs_mut(access.addr, access.len());
        while let Some((_, slots)) = runs.next_run() {
            for obj in slots {
                let repeat = obj.is_repeat_read(owner);
                let producer = obj.last_writer;

                // Reuse accounting: a change of reader flushes the previous
                // reader's record (lifetimes are per function call).
                if let Some(reuse_vec) = self.reuse.as_mut() {
                    if !repeat {
                        if let Some(prev_reader) = obj.last_reader {
                            let info = obj.reuse;
                            Self::reuse_flush(reuse_vec, prev_reader, info);
                            obj.reuse.reset();
                        }
                    }
                    obj.reuse.record_read(at, !repeat);
                }
                obj.record_read(owner);

                // Classification.
                let (producer_ctx, producer_call) = match producer {
                    Some(p) => (ContextId(p.ctx), p.call),
                    // Never-written bytes are program input, attributed to
                    // the synthetic root producer.
                    None => (ContextId::ROOT, CallNumber::ROOT),
                };
                let producer_fn = match producer_fn_memo {
                    Some((memo_ctx, func)) if memo_ctx == producer_ctx => func,
                    _ => {
                        let func = tree.node(producer_ctx).func;
                        producer_fn_memo = Some((producer_ctx, func));
                        func
                    }
                };
                // A last writer on another guest thread makes the byte
                // inter-thread input — disjoint from (and checked before)
                // the local class, so a thread re-reading data a sibling
                // wrote into "its own" function is still charged with the
                // cross-thread transfer.
                let is_inter = producer.is_some_and(|p| p.thread != thread);
                let is_local = !is_inter && producer.is_some() && producer_fn == reader_fn;

                match (is_inter, is_local, repeat) {
                    (true, _, false) => inter_unique += 1,
                    (true, _, true) => inter_nonunique += 1,
                    (false, true, false) => local_unique += 1,
                    (false, true, true) => local_nonunique += 1,
                    (false, false, false) => input_unique += 1,
                    (false, false, true) => input_nonunique += 1,
                }
                if !is_local {
                    match &mut producer_seg {
                        Some((seg_ctx, seg)) if *seg_ctx == producer_ctx => {
                            if repeat {
                                seg.nonunique += 1;
                            } else {
                                seg.unique += 1;
                            }
                        }
                        seg_slot => {
                            if let Some((prev_ctx, prev_seg)) = seg_slot.take() {
                                Self::flush_producer(
                                    &mut self.comm,
                                    &mut self.edges,
                                    prev_ctx,
                                    frame.ctx,
                                    prev_seg,
                                );
                            }
                            let mut seg = EdgeAccum::default();
                            if repeat {
                                seg.nonunique += 1;
                            } else {
                                seg.unique += 1;
                            }
                            *seg_slot = Some((producer_ctx, seg));
                        }
                    }
                }
                // Event-file dependencies: any unique read of data produced
                // by a *different dynamic call* orders the consumer after
                // the producer — including a later call of the same
                // function (classified *local* for the byte accounting
                // above, but still a real dependency between the two call
                // nodes of the Figure 3 construction).
                if !repeat && producer.is_some() && producer_call != frame.call {
                    if events_on {
                        match transfers.last_mut() {
                            Some((last_call, bytes)) if *last_call == producer_call => *bytes += 1,
                            _ => transfers.push((producer_call, 1)),
                        }
                    }
                    if phases_on {
                        match phase_transfers.last_mut() {
                            Some((last_ctx, bytes)) if *last_ctx == producer_ctx => *bytes += 1,
                            _ => phase_transfers.push((producer_ctx, 1)),
                        }
                    }
                }
            }
        }

        if let Some((prev_ctx, prev_seg)) = producer_seg {
            Self::flush_producer(
                &mut self.comm,
                &mut self.edges,
                prev_ctx,
                frame.ctx,
                prev_seg,
            );
        }
        let consumer_stats = Self::comm_entry(&mut self.comm, frame.ctx);
        consumer_stats.bytes_read += u64::from(access.size);
        consumer_stats.local_unique_bytes += local_unique;
        consumer_stats.local_nonunique_bytes += local_nonunique;
        consumer_stats.input_unique_bytes += input_unique;
        consumer_stats.input_nonunique_bytes += input_nonunique;
        consumer_stats.inter_thread_unique_bytes += inter_unique;
        consumer_stats.inter_thread_nonunique_bytes += inter_nonunique;
        if !transfers.is_empty() {
            // Flush the consumer's pending ops first so they precede the
            // transfers; subsequent per-byte flushes would push zero-op
            // fragments, which `push_compute` drops, so one flush here is
            // byte-identical to the old per-byte emission.
            self.flush_pending();
            if let Some(events) = self.events.as_mut() {
                for (producer_call, bytes) in transfers {
                    events.push_transfer(producer_call, frame.call, bytes);
                }
            }
        }
        if !phase_transfers.is_empty() {
            // Bucketed at the post-tick clock: the event file flushes the
            // read's own pending op before its transfer records, so the
            // streaming fold sees these exact timestamps.
            let builder = self.phases.as_mut().expect("phases on");
            for (producer_ctx, bytes) in phase_transfers {
                builder.record_transfer(producer_ctx, frame.ctx, self.phase_clock, bytes);
            }
        }
    }

    fn handle_write(&mut self, access: MemAccess, at: Timestamp) {
        if access.is_empty() {
            return;
        }
        let frame = self.current_frame();
        let owner = Owner::new(frame.ctx.0, frame.call, self.current_thread);
        if let Some(lines) = self.lines.as_mut() {
            lines.record_access(access, at);
        }
        self.retire_pending(1);
        self.comm_mut(frame.ctx).bytes_written += u64::from(access.size);
        let mut runs = self.shadow.runs_mut(access.addr, access.len());
        while let Some((_, slots)) = runs.next_run() {
            for obj in slots {
                if let Some(reuse_vec) = self.reuse.as_mut() {
                    if let Some(prev_reader) = obj.last_reader {
                        let info = obj.reuse;
                        Self::reuse_flush(reuse_vec, prev_reader, info);
                    }
                }
                obj.record_write(owner);
            }
        }
    }

    /// Sharded-mode event handling: globally-ordered state (contexts,
    /// call numbers, the sequencing log) advances here on the dispatch
    /// thread; per-byte work is routed to the shard workers.
    fn on_event_sharded(&mut self, event: RuntimeEvent, at: Timestamp) {
        match event {
            RuntimeEvent::Call { .. } | RuntimeEvent::SyscallEnter { .. } => {
                let ctx = self.cg.current_context();
                self.call_counter = self.call_counter.next();
                let call = self.call_counter;
                let parent = self.current_frame();
                if let Some(builder) = self.phases.as_mut() {
                    // Same pre-tick tally as the serial path.
                    builder.record_call(parent.ctx, ctx, self.phase_clock);
                }
                self.phase_clock += 1;
                let engine = self.engine.as_mut().expect("sharded mode");
                engine.sync_ctxs(self.cg.tree());
                engine.log_call(call, ctx);
                self.frames_mut().push(Frame {
                    ctx,
                    call,
                    pending_ops: 0,
                });
            }
            RuntimeEvent::Return | RuntimeEvent::SyscallExit => {
                self.engine.as_mut().expect("sharded mode").log_return();
                self.frames_mut().pop();
            }
            RuntimeEvent::Op { count, .. } => {
                // The sequencer drops ops logged with no open frame, so
                // the phase clock must drop them identically.
                if self.frames().is_some_and(|f| !f.is_empty()) {
                    self.phase_clock += u64::from(count);
                }
                let engine = self.engine.as_mut().expect("sharded mode");
                engine.log_ops(u64::from(count));
            }
            RuntimeEvent::Branch { .. } => {
                if self.frames().is_some_and(|f| !f.is_empty()) {
                    self.phase_clock += 1;
                }
                self.engine.as_mut().expect("sharded mode").log_ops(1);
            }
            RuntimeEvent::Read { access } => self.dispatch_sharded(false, access, at),
            RuntimeEvent::Write { access } => self.dispatch_sharded(true, access, at),
            RuntimeEvent::ThreadSwitch { thread } => {
                let engine = self.engine.as_mut().expect("sharded mode");
                engine.log_switch(thread.as_raw());
                self.current_thread = thread.as_raw();
            }
        }
    }

    /// Sharded-mode shadow access: whole-access tallies (`bytes_read` /
    /// `bytes_written`, line shadowing) happen once here; the per-byte
    /// classification is fanned out per chunk run.
    fn dispatch_sharded(&mut self, write: bool, access: MemAccess, at: Timestamp) {
        if access.is_empty() {
            return;
        }
        let frame = self.current_frame();
        if let Some(lines) = self.lines.as_mut() {
            lines.record_access(access, at);
        }
        let reader_fn = if write {
            None
        } else {
            self.cg.tree().node(frame.ctx).func
        };
        if write {
            self.comm_mut(frame.ctx).bytes_written += u64::from(access.size);
        } else {
            self.comm_mut(frame.ctx).bytes_read += u64::from(access.size);
        }
        // The access's own retired op ticks the phase clock exactly when
        // the serial path's pending-op bump fires: with an open frame.
        // (`log_ops` below is unconditional, but the sequencer drops ops
        // on empty stacks — the clock must not count those.)
        if self.frames().is_some_and(|f| !f.is_empty()) {
            self.phase_clock += 1;
        }
        let engine = self.engine.as_mut().expect("sharded mode");
        engine.sync_ctxs(self.cg.tree());
        if write {
            // The write itself retires one op (the read's op is logged by
            // the sequencer's `Read` entry).
            engine.log_ops(1);
        }
        engine.dispatch_access(
            write,
            access.addr,
            access.len(),
            frame.ctx,
            frame.call,
            self.current_thread,
            reader_fn,
            at,
            self.phase_clock,
        );
    }

    /// Sharded-mode end of run: join the workers, fold their fragments
    /// through the commutative merge layer, and sequence the event file
    /// back into access order.
    fn finish_sharded(&mut self, engine: ShardEngine) -> ProfileParts {
        let shards = engine.shard_count();
        // Join first: with the oracle elided, the exact residency lives
        // in the workers' tables and is only authoritative post-join.
        let crate::shard::ShardFinish {
            memory,
            dispatch,
            results,
            seq,
        } = engine.finish();
        let mut memory = memory;
        if let Some(lines) = &self.lines {
            memory = memory.combined(lines.memory_stats());
        }
        memory.export_metrics("shadow");

        // The dispatch thread's fragment: whole-access byte counts plus
        // the serial-equivalent footprint; classification comes from the
        // workers.
        let mut merged = ShardFragment {
            comm: std::mem::take(&mut self.comm),
            edges: Vec::new(),
            reuse: self.reuse.take(),
            memory: MemoryStats::default(),
            // The dispatch side tallied the calls; worker fragments fold
            // their transfer buckets in through the monoid below.
            phases: self.phases.take().map(PhaseBuilder::finish),
        };
        let mut transfers = crate::shard::TransferMap::new();
        let obs = sigil_obs::is_enabled();
        if obs {
            sigil_obs::metrics::set_counter("shadow.shards", shards as u64);
        }
        let (mut busy_total, mut idle_total) = (0u64, 0u64);
        for (i, result) in results.into_iter().enumerate() {
            if obs {
                sigil_obs::metrics::set_counter(
                    &format!("shadow.shard.{i}.accesses"),
                    result.stats.accesses,
                );
                sigil_obs::metrics::set_counter(
                    &format!("shadow.shard.{i}.runs"),
                    result.stats.runs,
                );
                sigil_obs::metrics::set_counter(
                    &format!("shadow.shard.{i}.evictions"),
                    result.evictions_applied,
                );
                sigil_obs::metrics::set_counter(
                    &format!("shadow.shard.{i}.busy_ns"),
                    result.busy_ns,
                );
                sigil_obs::metrics::set_counter(
                    &format!("shadow.shard.{i}.idle_ns"),
                    result.idle_ns,
                );
                busy_total += result.busy_ns;
                idle_total += result.idle_ns;
            }
            let (fragment, shard_transfers) = result.into_fragment();
            merged.merge(&fragment);
            for (idx, parts) in shard_transfers {
                transfers.entry(idx).or_default().extend(parts);
            }
        }
        if obs {
            // Add-counters so sweeps accumulate utilization across
            // workloads; the sweep report derives busy/(busy+idle).
            sigil_obs::metrics::counter("shadow.shards.busy_ns").add(busy_total);
            sigil_obs::metrics::counter("shadow.shards.idle_ns").add(idle_total);
            // Dispatch-thread telemetry: where the Amdahl ceiling is.
            sigil_obs::metrics::add_counter("dispatch.busy_ns", dispatch.busy_ns);
            sigil_obs::metrics::add_counter("dispatch.resolve_ns", dispatch.resolve_ns);
            sigil_obs::metrics::add_counter("dispatch.records", dispatch.records);
            sigil_obs::metrics::add_counter("dispatch.accesses", dispatch.accesses);
            sigil_obs::metrics::set_gauge(
                "dispatch.records_per_access",
                dispatch.records as f64 / dispatch.accesses.max(1) as f64,
            );
        }
        let events = self
            .config
            .record_events
            .then(|| sequence_events(seq, &mut transfers));
        (
            memory,
            merged.comm,
            merged.edges,
            merged.reuse,
            events,
            merged.phases,
        )
    }

    /// Consumes the profiler, pairing it with `symbols` into a [`Profile`].
    ///
    /// When observability is enabled this records two phase spans —
    /// `shadow` (final shadow-memory walk: footprint snapshot, reuse
    /// flush, line report) and `postprocess` (aggregate assembly) — as
    /// children of whatever span the caller has open, and publishes the
    /// shadow-table hot-path counters as `shadow.*` metrics.
    pub fn into_profile(mut self, symbols: SymbolTable) -> Profile {
        let shadow_span = sigil_obs::span("shadow");
        let (memory, comm, edge_rows, reuse, events, phases) = match self.engine.take() {
            Some(engine) => self.finish_sharded(engine),
            None => {
                let memory = self.memory_stats();
                memory.export_metrics("shadow");
                // Flush outstanding reuse records (bytes still "live" at
                // exit).
                if let Some(reuse_vec) = self.reuse.as_mut() {
                    for (_, obj) in self.shadow.iter() {
                        if let Some(reader) = obj.last_reader {
                            Self::reuse_flush(reuse_vec, reader, obj.reuse);
                        }
                    }
                }
                let mut edges: Vec<CommEdge> = self
                    .edges
                    .iter()
                    .map(|(&(producer, consumer), accum)| CommEdge {
                        producer,
                        consumer,
                        unique_bytes: accum.unique,
                        nonunique_bytes: accum.nonunique,
                    })
                    .collect();
                edges.sort_by_key(|e| (e.producer, e.consumer));
                (
                    memory,
                    std::mem::take(&mut self.comm),
                    edges,
                    self.reuse.take(),
                    self.events.take(),
                    self.phases.take().map(PhaseBuilder::finish),
                )
            }
        };

        let line_report = self.lines.as_ref().map(|lines| {
            let mut buckets = [0u64; 5];
            let mut touched = 0u64;
            for (_, stats) in lines.iter() {
                buckets[LineReport::bucket_of(stats.reuse_count())] += 1;
                touched += 1;
            }
            LineReport {
                line_size: lines.line_size(),
                buckets,
                touched_lines: touched,
            }
        });
        drop(shadow_span);
        let _postprocess_span = sigil_obs::span("postprocess");

        let mut contexts: Vec<ContextComm> = comm
            .iter()
            .enumerate()
            .map(|(i, comm)| ContextComm {
                ctx: ContextId(u32::try_from(i).expect("context count fits u32")),
                comm: *comm,
            })
            .collect();
        // Make sure every calltree context has a row, even if it never
        // communicated.
        let tree_len = self.cg.tree().len();
        while contexts.len() < tree_len {
            contexts.push(ContextComm {
                ctx: ContextId(u32::try_from(contexts.len()).expect("context count fits u32")),
                comm: CommStats::default(),
            });
        }

        Profile {
            callgrind: self.cg.into_profile(symbols),
            contexts,
            edges: edge_rows,
            reuse,
            lines: line_report,
            events,
            phases,
            memory,
        }
    }
}

impl ExecutionObserver for SigilProfiler {
    fn on_event(&mut self, event: RuntimeEvent) {
        let at = self.clock.tick(event);
        self.cg.on_event(event);
        if self.engine.is_some() {
            self.on_event_sharded(event, at);
            return;
        }
        match event {
            RuntimeEvent::Call { .. } | RuntimeEvent::SyscallEnter { .. } => self.handle_enter(),
            RuntimeEvent::Return | RuntimeEvent::SyscallExit => self.handle_leave(),
            RuntimeEvent::Op { count, .. } => self.retire_pending(u64::from(count)),
            RuntimeEvent::Branch { .. } => self.retire_pending(1),
            RuntimeEvent::Read { access } => self.handle_read(access, at),
            RuntimeEvent::Write { access } => self.handle_write(access, at),
            RuntimeEvent::ThreadSwitch { thread } => {
                // Close the outgoing thread's open fragment so its ops do
                // not leak into the other thread's timeline.
                self.flush_pending();
                self.current_thread = thread.as_raw();
            }
        }
    }

    fn on_finish(&mut self) {
        // Sorted so the drain order (and therefore the event file) is
        // deterministic regardless of HashMap iteration order.
        let mut threads: Vec<u32> = self.thread_frames.keys().copied().collect();
        threads.sort_unstable();
        for thread in threads {
            self.current_thread = thread;
            if self.engine.is_some() {
                let engine = self.engine.as_mut().expect("sharded mode");
                engine.log_resume(thread);
                while !self.frames_mut().is_empty() {
                    self.engine.as_mut().expect("sharded mode").log_return();
                    self.frames_mut().pop();
                }
            } else {
                while !self.frames_mut().is_empty() {
                    self.handle_leave();
                }
            }
        }
        self.current_thread = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::{Engine, OpClass};

    fn run<F: FnOnce(&mut Engine<SigilProfiler>)>(config: SigilConfig, body: F) -> Profile {
        let mut engine = Engine::new(SigilProfiler::new(config));
        body(&mut engine);
        let (profiler, symbols) = engine.finish_with_symbols();
        profiler.into_profile(symbols)
    }

    #[test]
    fn producer_consumer_classification() {
        let profile = run(SigilConfig::default(), |e| {
            e.scoped_named("main", |e| {
                e.scoped_named("produce", |e| e.write(0x100, 16));
                e.scoped_named("consume", |e| {
                    e.read(0x100, 16);
                    e.read(0x100, 16);
                });
            });
        });
        let consume = profile.function_by_name("consume").expect("consume");
        assert_eq!(consume.comm.input_unique_bytes, 16);
        assert_eq!(consume.comm.input_nonunique_bytes, 16);
        assert_eq!(consume.comm.local_unique_bytes, 0);
        let produce = profile.function_by_name("produce").expect("produce");
        assert_eq!(produce.comm.output_unique_bytes, 16);
        assert_eq!(produce.comm.output_nonunique_bytes, 16);
        assert_eq!(produce.comm.bytes_written, 16);
    }

    #[test]
    fn self_read_is_local() {
        let profile = run(SigilConfig::default(), |e| {
            e.scoped_named("f", |e| {
                e.write(0x200, 8);
                e.read(0x200, 8);
                e.read(0x200, 8);
            });
        });
        let f = profile.function_by_name("f").expect("f");
        assert_eq!(f.comm.local_unique_bytes, 8);
        assert_eq!(f.comm.local_nonunique_bytes, 8);
        assert_eq!(f.comm.input_unique_bytes, 0);
    }

    #[test]
    fn fresh_call_makes_reads_unique_again() {
        // Paper: the "last reader call" field distinguishes dynamic calls —
        // a new call of the same function reads uniquely again.
        let profile = run(SigilConfig::default(), |e| {
            e.scoped_named("main", |e| {
                e.scoped_named("produce", |e| e.write(0x300, 4));
                e.scoped_named("consume", |e| e.read(0x300, 4));
                e.scoped_named("consume", |e| e.read(0x300, 4));
            });
        });
        let consume = profile.function_by_name("consume").expect("consume");
        assert_eq!(consume.comm.input_unique_bytes, 8, "4 bytes per call");
        assert_eq!(consume.comm.input_nonunique_bytes, 0);
        assert_eq!(consume.calls, 2);
    }

    #[test]
    fn never_written_bytes_are_root_input() {
        let profile = run(SigilConfig::default(), |e| {
            e.scoped_named("f", |e| e.read(0x400, 8));
        });
        let f = profile.function_by_name("f").expect("f");
        assert_eq!(f.comm.input_unique_bytes, 8);
        // The edge comes from the synthetic root.
        assert_eq!(profile.edges.len(), 1);
        assert_eq!(profile.edges[0].producer, ContextId::ROOT);
    }

    #[test]
    fn overwrite_resets_uniqueness() {
        let profile = run(SigilConfig::default(), |e| {
            e.scoped_named("main", |e| {
                e.scoped_named("produce", |e| e.write(0x500, 4));
                e.scoped_named("consume", |e| e.read(0x500, 4));
                e.scoped_named("produce", |e| e.write(0x500, 4));
                e.scoped_named("consume", |e| e.read(0x500, 4));
            });
        });
        let consume = profile.function_by_name("consume").expect("consume");
        // Both reads unique: new value + new call.
        assert_eq!(consume.comm.input_unique_bytes, 8);
        let produce = profile.function_by_name("produce").expect("produce");
        assert_eq!(produce.comm.output_unique_bytes, 8);
    }

    #[test]
    fn context_separation_distinguishes_callers() {
        // D called from B and from C → two context rows (paper D1/D2).
        let profile = run(SigilConfig::default(), |e| {
            e.scoped_named("main", |e| {
                e.scoped_named("B", |e| {
                    e.scoped_named("D", |e| e.op(OpClass::IntArith, 5));
                });
                e.scoped_named("C", |e| {
                    e.scoped_named("D", |e| e.op(OpClass::IntArith, 7));
                });
            });
        });
        let d_contexts: Vec<_> = profile
            .callgrind
            .tree
            .iter()
            .filter(|(_, n)| {
                n.func
                    .is_some_and(|f| profile.callgrind.symbols.get_name(f) == Some("D"))
            })
            .collect();
        assert_eq!(d_contexts.len(), 2);
        let d = profile.function_by_name("D").expect("D");
        assert_eq!(d.calls, 2);
        assert_eq!(d.costs.ops_total(), 12);
    }

    #[test]
    fn reuse_mode_tracks_lifetimes() {
        let config = SigilConfig::default().with_reuse_mode();
        let profile = run(config, |e| {
            e.scoped_named("main", |e| {
                e.scoped_named("w", |e| e.write(0x600, 1));
                e.scoped_named("r", |e| {
                    e.read(0x600, 1);
                    e.op(OpClass::IntArith, 100);
                    e.read(0x600, 1); // reuse after 100 ops
                });
            });
        });
        let reuse = profile.reuse.as_ref().expect("reuse mode on");
        let r_row = profile
            .context_reuse_by_name("r")
            .expect("r has reuse stats");
        assert_eq!(r_row.reused_bytes, 1);
        assert_eq!(r_row.total_reuse_count, 1);
        assert!(r_row.avg_reused_lifetime() >= 100.0);
        assert!(!reuse.is_empty());
    }

    #[test]
    fn zero_reuse_flushed_at_exit() {
        let config = SigilConfig::default().with_reuse_mode();
        let profile = run(config, |e| {
            e.scoped_named("f", |e| {
                e.write(0x700, 4);
                e.read(0x700, 4);
            });
        });
        let f_row = profile.context_reuse_by_name("f").expect("f reuse");
        assert_eq!(f_row.zero_reuse_bytes, 4);
        assert_eq!(f_row.reused_bytes, 0);
    }

    #[test]
    fn line_mode_reports_buckets() {
        let config = SigilConfig::default().with_line_mode(64);
        let profile = run(config, |e| {
            e.scoped_named("f", |e| {
                e.write(0x0, 8); // line 0: 1 access
                for _ in 0..50 {
                    e.read(0x40, 8); // line 1: 50 accesses → 49 reuses
                }
            });
        });
        let lines = profile.lines.as_ref().expect("line mode on");
        assert_eq!(lines.line_size, 64);
        assert_eq!(lines.touched_lines, 2);
        assert_eq!(lines.buckets[0], 1); // <10
        assert_eq!(lines.buckets[1], 1); // <100
    }

    #[test]
    fn event_file_records_dependencies() {
        let config = SigilConfig::default().with_events();
        let profile = run(config, |e| {
            e.scoped_named("main", |e| {
                e.scoped_named("produce", |e| {
                    e.op(OpClass::IntArith, 10);
                    e.write(0x800, 8);
                });
                e.scoped_named("consume", |e| {
                    e.read(0x800, 8);
                    e.op(OpClass::IntArith, 20);
                });
            });
        });
        let events = profile.events.as_ref().expect("events recorded");
        assert!(events.len() >= 5);
        assert_eq!(events.total_transfer_bytes(), 8);
        // Compute ops include reads/writes as retired ops.
        assert!(events.total_ops() >= 30);
    }

    #[test]
    fn shadow_limit_degrades_gracefully() {
        // With an aggressive limit, evicted bytes re-read as unique
        // (over-counting uniqueness, never crashing) — the paper reports
        // "negligible" accuracy loss for dedup.
        let config = SigilConfig::default().with_shadow_limit(1);
        let profile = run(config, |e| {
            e.scoped_named("f", |e| {
                e.write(0x0, 4);
                e.write(0x100_0000, 4); // different chunk, evicts first
                e.read(0x0, 4); // shadow lost → classified as root input
            });
        });
        assert!(profile.memory.evicted_chunks >= 1);
        let f = profile.function_by_name("f").expect("f");
        assert_eq!(f.comm.bytes_read, 4);
        assert_eq!(f.comm.input_unique_bytes, 4, "evicted → counted as input");
    }

    #[test]
    fn zero_length_accesses_are_no_ops() {
        // Hand-built event streams can carry size-0 accesses (the engine
        // never emits them); both handlers must return before touching
        // pending ops, line shadow, comm tallies, or the shadow table.
        let config = SigilConfig::default().with_reuse_mode().with_events();
        let empty = MemAccess::new(0x1000, 0);
        let mut symbols = SymbolTable::new();
        let f = symbols.intern("f");
        let mut profiler = SigilProfiler::new(config);
        profiler.on_event(RuntimeEvent::Call { callee: f });
        profiler.on_event(RuntimeEvent::Write { access: empty });
        profiler.on_event(RuntimeEvent::Read { access: empty });
        profiler.on_event(RuntimeEvent::Write {
            access: MemAccess::new(0x2000, 4),
        });
        profiler.on_event(RuntimeEvent::Return);
        profiler.on_finish();
        let profile = profiler.into_profile(symbols);
        let f = profile.function_by_name("f").expect("f");
        assert_eq!(f.comm.bytes_read, 0);
        assert_eq!(f.comm.bytes_written, 4);
        assert_eq!(profile.memory.accesses, 4, "only the real write shadows");
        assert_eq!(profile.memory.runs, 1);
        assert!(profile.edges.is_empty());
    }

    #[test]
    fn chunk_straddling_access_classifies_every_byte() {
        // One access spanning the 4 KiB shadow-chunk split must classify
        // byte-for-byte like two chunk-local accesses would.
        let profile = run(SigilConfig::default(), |e| {
            e.scoped_named("main", |e| {
                e.scoped_named("produce", |e| e.write(4096 - 8, 16));
                e.scoped_named("consume", |e| e.read(4096 - 8, 16));
            });
        });
        let consume = profile.function_by_name("consume").expect("consume");
        assert_eq!(consume.comm.input_unique_bytes, 16);
        let produce = profile.function_by_name("produce").expect("produce");
        assert_eq!(produce.comm.output_unique_bytes, 16);
        // Each access resolved its chunk twice (once per side of the split).
        assert_eq!(profile.memory.runs, 4);
        assert_eq!(profile.memory.run_bytes, 32);
    }

    /// A composite scenario exercising every subsystem the sharded path
    /// must reproduce: chunk-straddling accesses, repeat reads, cross-
    /// function transfers, syscalls, multiple threads, ops, and branches.
    fn composite_scenario(e: &mut Engine<SigilProfiler>) {
        e.scoped_named("main", |e| {
            e.scoped_named("produce", |e| {
                e.op(OpClass::IntArith, 10);
                e.write(4096 - 8, 16); // straddles chunks 0|1
                e.write(3 * 4096 - 4, 8); // straddles chunks 2|3
            });
            e.scoped_named("consume", |e| {
                e.read(4096 - 8, 16);
                e.read(4096 - 8, 16); // non-unique re-read
                e.op(OpClass::FloatArith, 5);
                e.read(3 * 4096 - 4, 8);
            });
            e.syscall("sys_read", |e| e.write(0x9000, 64));
            e.read(0x9000, 64);
            e.scoped_named("produce", |e| e.write(4096 - 8, 16)); // overwrite
            e.scoped_named("consume", |e| e.read(4096 - 8, 16));
            e.read(0x20_0000, 12); // never-written root input
        });
    }

    #[test]
    fn sharded_profile_matches_serial_byte_for_byte() {
        // The tentpole invariant: with every feature enabled, sharded
        // replay serializes to the identical profile.
        for shards in [2, 3, 4, 8] {
            let base = SigilConfig::default()
                .with_reuse_mode()
                .with_line_mode(64)
                .with_events()
                .with_phases(5);
            let serial = run(base, composite_scenario);
            let sharded = run(base.with_shards(shards), composite_scenario);
            assert_eq!(
                serde_json::to_string(&serial).unwrap(),
                serde_json::to_string(&sharded).unwrap(),
                "shards={shards}"
            );
            assert!(
                serial.phases.as_ref().is_some_and(|p| !p.pairs.is_empty()),
                "composite scenario produces phase activity"
            );
        }
    }

    #[test]
    fn phase_profile_matches_event_clock() {
        // The phase clock must agree with the event file's timestamps:
        // replaying the recorded events through the fold rules yields
        // the identical profile. This pins serial replay and the
        // event-stream interpretation together.
        let config = SigilConfig::default().with_events().with_phases(3);
        let profile = run(config, composite_scenario);
        let events = profile.events.as_ref().expect("events on");
        let phases = profile.phases.as_ref().expect("phases on");

        use crate::events_out::EventRecord;
        let root = sigil_callgrind::ContextId::ROOT;
        let mut builder = PhaseBuilder::new(3);
        let mut ctx_of = std::collections::HashMap::new();
        let mut clock = 0u64;
        for record in events.records() {
            match *record {
                EventRecord::Call {
                    parent_call,
                    call,
                    ctx,
                } => {
                    ctx_of.insert(call, ctx);
                    let from = ctx_of.get(&parent_call).copied().unwrap_or(root);
                    builder.record_call(from, ctx, clock);
                    clock += 1;
                }
                EventRecord::Compute { ops, .. } => clock += ops,
                EventRecord::Transfer {
                    from_call,
                    to_call,
                    bytes,
                } => {
                    let from = ctx_of.get(&from_call).copied().unwrap_or(root);
                    let to = ctx_of.get(&to_call).copied().unwrap_or(root);
                    builder.record_transfer(from, to, clock, bytes);
                }
            }
        }
        let refolded = builder.finish();
        assert_eq!(
            serde_json::to_string(phases).unwrap(),
            serde_json::to_string(&refolded).unwrap()
        );
    }

    #[test]
    fn sharded_profile_matches_serial_under_eviction() {
        use sigil_mem::EvictionPolicy;
        // Tiny limits force constant eviction; the residency oracle must
        // mirror every victim so per-byte state stays serial-identical.
        for policy in [EvictionPolicy::Fifo, EvictionPolicy::Lru] {
            for limit in [1, 2, 3] {
                let base = SigilConfig::default()
                    .with_reuse_mode()
                    .with_events()
                    .with_shadow_limit(limit)
                    .with_eviction(policy);
                let serial = run(base, composite_scenario);
                let sharded = run(base.with_shards(4), composite_scenario);
                assert_eq!(
                    serde_json::to_string(&serial).unwrap(),
                    serde_json::to_string(&sharded).unwrap(),
                    "policy={policy:?} limit={limit}"
                );
            }
        }
    }

    #[test]
    fn sharded_multithread_event_order_is_serial() {
        // Thread switches and end-of-run frame draining must sequence
        // identically (on_finish drains in sorted thread order).
        let scenario = |e: &mut Engine<SigilProfiler>| {
            e.scoped_named("main", |e| {
                e.write(0x100, 8);
                e.switch_thread(sigil_trace::ThreadId::from_raw(2));
                e.scoped_named("t2", |e| {
                    e.op(OpClass::IntArith, 3);
                    e.read(0x100, 8);
                });
                e.switch_thread(sigil_trace::ThreadId::from_raw(1));
                e.scoped_named("t1", |e| e.read(0x100, 8));
                e.switch_thread(sigil_trace::ThreadId::MAIN);
            });
        };
        let base = SigilConfig::default().with_events();
        let serial = run(base, scenario);
        let sharded = run(base.with_shards(4), scenario);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&sharded).unwrap()
        );
        assert!(serial.events.as_ref().is_some_and(|ev| !ev.is_empty()));
    }

    #[test]
    fn cross_thread_read_is_inter_thread_input() {
        use sigil_trace::ThreadId;
        let profile = run(SigilConfig::default(), |e| {
            e.scoped_named("main", |e| {
                e.scoped_named("produce", |e| e.write(0x100, 16));
                e.switch_thread(ThreadId::from_raw(1));
                e.scoped_named("consume", |e| {
                    e.read(0x100, 16);
                    e.read(0x100, 16); // same-call re-read: non-unique
                });
                e.switch_thread(ThreadId::MAIN);
            });
        });
        let consume = profile.function_by_name("consume").expect("consume");
        assert_eq!(consume.comm.inter_thread_unique_bytes, 16);
        assert_eq!(consume.comm.inter_thread_nonunique_bytes, 16);
        assert_eq!(consume.comm.input_unique_bytes, 0);
        assert_eq!(consume.comm.local_unique_bytes, 0);
        assert_eq!(consume.comm.bytes_read, 32);
        // The producer's output tallies and the edge are unchanged by the
        // new axis: inter-thread bytes still cross the boundary.
        let produce = profile.function_by_name("produce").expect("produce");
        assert_eq!(produce.comm.output_unique_bytes, 16);
        assert_eq!(produce.comm.output_nonunique_bytes, 16);
    }

    #[test]
    fn same_function_cross_thread_read_is_inter_not_local() {
        use sigil_trace::ThreadId;
        // Thread 1 re-reading bytes that thread 0 wrote inside the *same
        // function* is still a cross-thread transfer, never "local".
        let profile = run(SigilConfig::default(), |e| {
            e.scoped_named("main", |e| {
                e.scoped_named("worker", |e| e.write(0x200, 8));
                e.switch_thread(ThreadId::from_raw(1));
                e.scoped_named("worker", |e| e.read(0x200, 8));
                e.switch_thread(ThreadId::MAIN);
            });
        });
        let worker = profile.function_by_name("worker").expect("worker");
        assert_eq!(worker.comm.inter_thread_unique_bytes, 8);
        assert_eq!(worker.comm.local_unique_bytes, 0);
        assert_eq!(worker.comm.input_unique_bytes, 0);
        // The producer side of the same function still records output.
        assert_eq!(worker.comm.output_unique_bytes, 8);
    }

    #[test]
    fn same_thread_classification_is_unchanged() {
        use sigil_trace::ThreadId;
        // A round-trip through another thread that never touches the data
        // leaves every existing class exactly as the single-threaded run.
        let profile = run(SigilConfig::default(), |e| {
            e.scoped_named("main", |e| {
                e.scoped_named("f", |e| {
                    e.write(0x300, 8);
                    e.read(0x300, 8);
                });
                e.switch_thread(ThreadId::from_raw(1));
                e.op(sigil_trace::OpClass::IntArith, 3);
                e.switch_thread(ThreadId::MAIN);
                e.scoped_named("g", |e| e.read(0x300, 8));
            });
        });
        let f = profile.function_by_name("f").expect("f");
        assert_eq!(f.comm.local_unique_bytes, 8);
        assert_eq!(f.comm.inter_thread_bytes(), 0);
        let g = profile.function_by_name("g").expect("g");
        assert_eq!(g.comm.input_unique_bytes, 8);
        assert_eq!(g.comm.inter_thread_bytes(), 0);
    }

    #[test]
    fn syscall_output_attributed_to_syscall() {
        let profile = run(SigilConfig::default(), |e| {
            e.scoped_named("main", |e| {
                e.syscall("sys_read", |e| e.write(0x900, 64));
                e.read(0x900, 64);
            });
        });
        let sys = profile.function_by_name("sys_read").expect("syscall row");
        assert_eq!(sys.comm.output_unique_bytes, 64);
        let main = profile.function_by_name("main").expect("main");
        assert_eq!(main.comm.input_unique_bytes, 64);
    }
}
