//! Sigil profiler configuration.

use sigil_callgrind::CallgrindConfig;
use sigil_mem::EvictionPolicy;

/// Configuration of a [`crate::SigilProfiler`].
///
/// Mirrors the paper's command-line options: reuse monitoring is opt-in
/// (it roughly doubles memory usage), the shadow-memory limit is opt-in
/// (the paper needed it only for `dedup`), line-granularity mode takes a
/// cache-line size, and event recording enables the "sequence of
/// dependent events" output representation.
///
/// # Example
///
/// ```
/// use sigil_core::SigilConfig;
///
/// let config = SigilConfig::default()
///     .with_reuse_mode()
///     .with_line_mode(64)
///     .with_shadow_limit(4096);
/// assert!(config.reuse_mode);
/// assert_eq!(config.line_size, Some(64));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SigilConfig {
    /// Track per-byte reuse counts and lifetimes (paper's "re-use mode").
    pub reuse_mode: bool,
    /// Shadow whole cache lines of this size as well (paper §IV-B3).
    pub line_size: Option<u32>,
    /// Cap on resident shadow chunks; `None` = unlimited.
    pub shadow_chunk_limit: Option<usize>,
    /// Eviction policy used when the cap is hit.
    pub eviction: EvictionPolicy,
    /// Record the event-file representation (sequence of dependent
    /// events) in addition to aggregates.
    pub record_events: bool,
    /// Collect a phase-sliced communication profile with this bucket
    /// width along the phase clock (retired ops); `None` = off.
    pub phase_bucket_ops: Option<u64>,
    /// Number of shadow-memory shards replayed by parallel workers.
    /// `1` (the default) profiles serially on the dispatching thread;
    /// `N > 1` partitions the address space by chunk (`chunk_key % N`)
    /// and fans per-chunk runs out to `N` worker threads. The resulting
    /// profile is byte-identical to serial replay (see
    /// [`crate::shard`]).
    pub shards: usize,
    /// Keep the dispatch-side residency oracle even when the shadow
    /// memory is unbounded. Without a chunk limit the oracle decides
    /// nothing (there are no evictions) and sharded dispatch normally
    /// elides it entirely, reproducing its counters arithmetically; this
    /// knob forces the legacy per-run oracle path so benches and the
    /// differential matrix can hold both paths to the same profiles.
    pub force_dispatch_oracle: bool,
    /// Disable the dispatch-side coalescing of consecutive same-shard
    /// runs into one [`crate::shard`] access record. Coalescing is
    /// byte-transparent (workers reconstruct per-access metadata); this
    /// knob pins the one-record-per-run baseline for A/B measurement
    /// and differential coverage.
    pub no_dispatch_coalesce: bool,
    /// Configuration of the embedded Callgrind-like profiler.
    pub callgrind: CallgrindConfig,
}

impl Default for SigilConfig {
    fn default() -> Self {
        SigilConfig {
            reuse_mode: false,
            line_size: None,
            shadow_chunk_limit: None,
            eviction: EvictionPolicy::Fifo,
            record_events: false,
            phase_bucket_ops: None,
            shards: 1,
            force_dispatch_oracle: false,
            no_dispatch_coalesce: false,
            callgrind: CallgrindConfig::default(),
        }
    }
}

impl SigilConfig {
    /// Enables reuse monitoring.
    #[must_use]
    pub fn with_reuse_mode(mut self) -> Self {
        self.reuse_mode = true;
        self
    }

    /// Enables line-granularity shadowing with the given line size.
    #[must_use]
    pub fn with_line_mode(mut self, line_size: u32) -> Self {
        self.line_size = Some(line_size);
        self
    }

    /// Caps resident shadow chunks (the paper's memory-limit option).
    #[must_use]
    pub fn with_shadow_limit(mut self, max_chunks: usize) -> Self {
        self.shadow_chunk_limit = Some(max_chunks);
        self
    }

    /// Selects the eviction policy used with a shadow limit.
    #[must_use]
    pub fn with_eviction(mut self, policy: EvictionPolicy) -> Self {
        self.eviction = policy;
        self
    }

    /// Enables event-file recording.
    #[must_use]
    pub fn with_events(mut self) -> Self {
        self.record_events = true;
        self
    }

    /// Enables phase-sliced profiling with the given bucket width in
    /// retired ops (`0` is clamped to `1`).
    #[must_use]
    pub fn with_phases(mut self, bucket_ops: u64) -> Self {
        self.phase_bucket_ops = Some(bucket_ops.max(1));
        self
    }

    /// Sets the number of shadow-memory shards (`0` is treated as `1`).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Forces the dispatch-side residency oracle even with unbounded
    /// shadow memory (the pre-pipelined dispatch path).
    #[must_use]
    pub fn with_forced_dispatch_oracle(mut self) -> Self {
        self.force_dispatch_oracle = true;
        self
    }

    /// Disables dispatch-side run coalescing (one access record per
    /// chunk run, the pre-pipelined message shape).
    #[must_use]
    pub fn without_dispatch_coalescing(mut self) -> Self {
        self.no_dispatch_coalesce = true;
        self
    }

    /// Overrides the embedded Callgrind configuration.
    #[must_use]
    pub fn with_callgrind(mut self, callgrind: CallgrindConfig) -> Self {
        self.callgrind = callgrind;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_baseline_mode() {
        let c = SigilConfig::default();
        assert!(!c.reuse_mode);
        assert!(c.line_size.is_none());
        assert!(c.shadow_chunk_limit.is_none());
        assert!(!c.record_events);
        assert!(c.phase_bucket_ops.is_none());
        assert_eq!(c.shards, 1, "serial by default");
    }

    #[test]
    fn zero_shards_clamps_to_serial() {
        assert_eq!(SigilConfig::default().with_shards(0).shards, 1);
        assert_eq!(SigilConfig::default().with_shards(4).shards, 4);
    }

    #[test]
    fn builders_compose() {
        let c = SigilConfig::default()
            .with_reuse_mode()
            .with_events()
            .with_shadow_limit(16)
            .with_eviction(EvictionPolicy::Lru)
            .with_line_mode(128);
        assert!(c.reuse_mode && c.record_events);
        assert_eq!(c.shadow_chunk_limit, Some(16));
        assert_eq!(c.eviction, EvictionPolicy::Lru);
        assert_eq!(c.line_size, Some(128));
        assert_eq!(c.with_phases(0).phase_bucket_ops, Some(1), "width clamps");
    }

    #[test]
    fn dispatch_knobs_default_to_the_pipelined_path() {
        let c = SigilConfig::default();
        assert!(!c.force_dispatch_oracle);
        assert!(!c.no_dispatch_coalesce);
        let legacy = c
            .with_forced_dispatch_oracle()
            .without_dispatch_coalescing();
        assert!(legacy.force_dispatch_oracle && legacy.no_dispatch_coalesce);
    }
}
