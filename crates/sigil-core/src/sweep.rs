//! Parallel sweep driver: profile independent workloads concurrently.
//!
//! Each [`crate::SigilProfiler`] owns all of its state (shadow table,
//! calltree, edge accumulators), so profiling N independent workloads is
//! embarrassingly parallel: one profiler per worker thread, no sharing.
//! [`run_parallel`] provides the generic fan-out — a fixed pool of
//! `std::thread` workers pulling items off a shared atomic cursor — and
//! [`SweepEntry`] is the per-workload result record (profile plus wall
//! time) that drivers serialize into results JSON.
//!
//! Results are returned **in input order** regardless of which worker
//! finished first, and each item is processed by exactly one worker, so
//! a sweep at `jobs = N` is observably identical to the serial sweep
//! apart from wall time.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::profile::Profile;

/// Runs `worker` over `items` on `jobs` threads, returning outputs in
/// input order.
///
/// With `jobs <= 1` (or a single item) everything runs on the calling
/// thread — useful both as the serial baseline and to keep single-job
/// runs free of any thread overhead.
///
/// # Panics
///
/// Propagates a panic from `worker` once all threads have stopped.
pub fn run_parallel<I, O, F>(jobs: usize, items: Vec<I>, worker: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.into_iter().map(worker).collect();
    }

    let total = items.len();
    // Hand items to the pool behind Options so each is taken exactly once.
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<O>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    break;
                }
                let item = slots[index]
                    .lock()
                    .expect("sweep item lock")
                    .take()
                    .expect("each sweep item is claimed once");
                let output = worker(item);
                *results[index].lock().expect("sweep result lock") = Some(output);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep result lock")
                .expect("every sweep item produced a result")
        })
        .collect()
}

/// One workload's result within a sweep: the profile plus how long this
/// workload took to profile (recorded in the results JSON).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepEntry {
    /// Workload name (benchmark id).
    pub name: String,
    /// Input size label the workload ran at.
    pub size: String,
    /// Wall-clock time spent profiling this workload, in milliseconds.
    pub wall_ms: f64,
    /// The measured profile.
    pub profile: Profile,
}

/// Runs `produce` for every named workload on `jobs` threads and wraps
/// each output profile in a timed [`SweepEntry`].
///
/// `produce` receives the workload name and must synthesize its profile
/// from scratch (it runs once per workload, on whichever worker thread
/// claims it).
pub fn sweep<F>(jobs: usize, names: &[(String, String)], produce: F) -> Vec<SweepEntry>
where
    F: Fn(&str) -> Profile + Sync,
{
    run_parallel(jobs, names.to_vec(), |(name, size)| {
        let start = Instant::now();
        let profile = produce(&name);
        SweepEntry {
            name,
            size,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            profile,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_keep_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = run_parallel(8, items.clone(), |v| v * 2);
        assert_eq!(doubled, items.iter().map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..64).collect();
        let serial = run_parallel(1, items.clone(), |v| v * v + 1);
        let parallel = run_parallel(4, items, |v| v * v + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn each_item_processed_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let outputs = run_parallel(3, vec![(); 37], |()| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(outputs.len(), 37);
        assert_eq!(calls.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn zero_jobs_degrades_to_serial() {
        assert_eq!(run_parallel(0, vec![5u32], |v| v + 1), vec![6]);
        assert_eq!(run_parallel(0, Vec::<u32>::new(), |v| v + 1), vec![]);
    }
}
