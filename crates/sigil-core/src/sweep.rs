//! Parallel sweep driver: profile independent workloads concurrently.
//!
//! Each [`crate::SigilProfiler`] owns all of its state (shadow table,
//! calltree, edge accumulators), so profiling N independent workloads is
//! embarrassingly parallel: one profiler per worker thread, no sharing.
//! [`run_parallel`] provides the generic fan-out — a fixed pool of
//! `std::thread` workers pulling items off a shared atomic cursor — and
//! [`SweepEntry`] is the per-workload result record (profile plus wall
//! time) that drivers serialize into results JSON.
//!
//! Results are returned **in input order** regardless of which worker
//! finished first, and each item is processed by exactly one worker, so
//! a sweep at `jobs = N` is observably identical to the serial sweep
//! apart from wall time.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use sigil_mem::MemoryStats;
use sigil_obs::obs_info;

use crate::profile::Profile;

/// Runs `worker` over `items` on `jobs` threads, returning outputs in
/// input order.
///
/// With `jobs <= 1` (or a single item) everything runs on the calling
/// thread — useful both as the serial baseline and to keep single-job
/// runs free of any thread overhead.
///
/// # Panics
///
/// Propagates a panic from `worker` once all threads have stopped.
pub fn run_parallel<I, O, F>(jobs: usize, items: Vec<I>, worker: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 {
        return items.into_iter().map(worker).collect();
    }

    let total = items.len();
    // Hand items to the pool behind Options so each is taken exactly once.
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<O>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    break;
                }
                let item = slots[index]
                    .lock()
                    .expect("sweep item lock")
                    .take()
                    .expect("each sweep item is claimed once");
                let output = worker(item);
                *results[index].lock().expect("sweep result lock") = Some(output);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("sweep result lock")
                .expect("every sweep item produced a result")
        })
        .collect()
}

/// Clamps a sweep's job count so that `jobs × shards` worker threads
/// never oversubscribe `cores` (each sweep job running a sharded
/// profiler spins up `shards` replay workers of its own).
///
/// Pure core of [`clamp_jobs`]; `jobs` and `shards` are first normalized
/// to at least 1. The result is `max(1, cores / shards)` capped at the
/// requested `jobs` — so a request that already fits is returned
/// unchanged, and even `shards > cores` still gets one job.
pub fn clamp_jobs_to(jobs: usize, shards: usize, cores: usize) -> usize {
    let jobs = jobs.max(1);
    let shards = shards.max(1);
    let cores = cores.max(1);
    jobs.min((cores / shards).max(1))
}

/// [`clamp_jobs_to`] against the machine's available parallelism, warning
/// through `sigil-obs` when the requested job count had to shrink.
pub fn clamp_jobs(jobs: usize, shards: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let clamped = clamp_jobs_to(jobs, shards, cores);
    if clamped < jobs.max(1) {
        sigil_obs::obs_warn!(
            "sweep: clamping --jobs {jobs} to {clamped}: {shards} shard worker(s) per job \
             on {cores} core(s)"
        );
    }
    clamped
}

/// One workload's result within a sweep: the profile plus how long this
/// workload took to profile (recorded in the results JSON).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepEntry {
    /// Workload name (benchmark id).
    pub name: String,
    /// Input size label the workload ran at.
    pub size: String,
    /// Wall-clock time spent profiling this workload, in milliseconds.
    pub wall_ms: f64,
    /// Shadow-memory footprint and hot-path counters for this workload.
    ///
    /// A top-level copy of `profile.memory` so sweep consumers (and the
    /// results JSON) can read the shadow counters without digging into
    /// the full profile.
    pub memory: MemoryStats,
    /// The measured profile.
    pub profile: Profile,
}

/// Upper bucket bounds (milliseconds) for the `sweep.wall_ms` histogram.
const WALL_MS_BOUNDS: &[u64] = &[1, 10, 50, 100, 500, 1000, 5000, 30_000];

/// Shared progress state for a sweep, read by the monitor thread. The
/// stop flag lives under a condvar so teardown wakes the monitor
/// immediately instead of waiting out a poll sleep.
struct SweepProgress {
    total: usize,
    done: AtomicUsize,
    running: AtomicUsize,
    stop: Mutex<bool>,
    stopped: Condvar,
}

impl SweepProgress {
    /// Signals the monitor to exit and wakes it from its timed wait.
    fn request_stop(&self) {
        *self.stop.lock().expect("sweep stop lock") = true;
        self.stopped.notify_all();
    }
}

/// Spawns a background thread that logs a progress line (workloads done /
/// running / elapsed) roughly every two seconds at `info` level, and a
/// final `N/N done` summary when the sweep completes. Returns `None`
/// when info logging is off so quiet runs pay nothing.
///
/// The monitor parks on a condvar rather than a sleep loop: when the
/// sweep finishes, [`SweepProgress::request_stop`] wakes it at once, so
/// teardown costs microseconds instead of the worst-case poll interval.
fn spawn_progress_monitor(progress: &Arc<SweepProgress>) -> Option<std::thread::JoinHandle<()>> {
    if !sigil_obs::log::enabled(sigil_obs::log::Level::Info) {
        return None;
    }
    let progress = Arc::clone(progress);
    Some(std::thread::spawn(move || {
        let start = Instant::now();
        let interval = Duration::from_secs(2);
        let mut guard = progress.stop.lock().expect("sweep stop lock");
        loop {
            let (next, timeout) = progress
                .stopped
                .wait_timeout_while(guard, interval, |stopped| !*stopped)
                .expect("sweep stop lock");
            guard = next;
            if !timeout.timed_out() {
                break; // stop requested: fall through to the summary
            }
            obs_info!(
                "sweep progress: {}/{} done, {} running, {:.1}s elapsed",
                progress.done.load(Ordering::Relaxed),
                progress.total,
                progress.running.load(Ordering::Relaxed),
                start.elapsed().as_secs_f64()
            );
        }
        obs_info!(
            "sweep complete: {}/{} done in {:.1}s",
            progress.done.load(Ordering::Relaxed),
            progress.total,
            start.elapsed().as_secs_f64()
        );
    }))
}

/// Runs `produce` for every named workload on `jobs` threads and wraps
/// each output profile in a timed [`SweepEntry`].
///
/// `produce` receives the workload name and must synthesize its profile
/// from scratch (it runs once per workload, on whichever worker thread
/// claims it).
///
/// When observability is enabled each workload runs under a
/// `workload:<name>` span, completions bump the `sweep.workloads_done`
/// counter and feed the `sweep.wall_ms` histogram, and (at `info` log
/// level) a background monitor prints a periodic progress line.
pub fn sweep<F>(jobs: usize, names: &[(String, String)], produce: F) -> Vec<SweepEntry>
where
    F: Fn(&str) -> Profile + Sync,
{
    let progress = Arc::new(SweepProgress {
        total: names.len(),
        done: AtomicUsize::new(0),
        running: AtomicUsize::new(0),
        stop: Mutex::new(false),
        stopped: Condvar::new(),
    });
    let monitor = spawn_progress_monitor(&progress);
    let done_counter = sigil_obs::metrics::counter("sweep.workloads_done");
    let wall_hist = sigil_obs::metrics::histogram("sweep.wall_ms", WALL_MS_BOUNDS);

    let entries = run_parallel(jobs, names.to_vec(), |(name, size)| {
        let _span = sigil_obs::span_with(|| format!("workload:{name}"));
        progress.running.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let profile = produce(&name);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        progress.running.fetch_sub(1, Ordering::Relaxed);
        progress.done.fetch_add(1, Ordering::Relaxed);
        done_counter.inc();
        wall_hist.observe(wall_ms.round() as u64);
        SweepEntry {
            name,
            size,
            wall_ms,
            memory: profile.memory,
            profile,
        }
    });

    progress.request_stop();
    if let Some(handle) = monitor {
        let _ = handle.join();
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_keep_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = run_parallel(8, items.clone(), |v| v * 2);
        assert_eq!(doubled, items.iter().map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..64).collect();
        let serial = run_parallel(1, items.clone(), |v| v * v + 1);
        let parallel = run_parallel(4, items, |v| v * v + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn each_item_processed_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let outputs = run_parallel(3, vec![(); 37], |()| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(outputs.len(), 37);
        assert_eq!(calls.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn clamp_caps_the_thread_product() {
        // 8 cores: 4 jobs × 2 shards fits exactly; 8 × 2 halves.
        assert_eq!(clamp_jobs_to(4, 2, 8), 4);
        assert_eq!(clamp_jobs_to(8, 2, 8), 4);
        assert_eq!(clamp_jobs_to(8, 4, 8), 2);
        // Serial profilers (shards <= 1) keep the full job count.
        assert_eq!(clamp_jobs_to(8, 1, 8), 8);
        assert_eq!(clamp_jobs_to(8, 0, 8), 8);
        // More shards than cores still runs one job at a time.
        assert_eq!(clamp_jobs_to(4, 16, 8), 1);
        assert_eq!(clamp_jobs_to(4, 8, 1), 1);
        // Degenerate inputs normalize instead of panicking.
        assert_eq!(clamp_jobs_to(0, 0, 0), 1);
        // Never raises the requested job count.
        assert_eq!(clamp_jobs_to(2, 1, 64), 2);
        // The clamped product never exceeds the cores (when cores >= shards).
        for jobs in 1..=12 {
            for shards in 1..=12 {
                for cores in 1..=12 {
                    let clamped = clamp_jobs_to(jobs, shards, cores);
                    assert!(clamped >= 1 && clamped <= jobs.max(1));
                    if shards <= cores {
                        assert!(
                            clamped * shards <= cores,
                            "jobs={jobs} shards={shards} cores={cores} -> {clamped}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stop_wakes_the_monitor_wait_immediately() {
        // The monitor parks on the condvar with a long timeout; a stop
        // request must wake it without waiting the interval out. A
        // 30-second timeout makes a regression (back to sleep polling)
        // fail loudly instead of flaking.
        let progress = Arc::new(SweepProgress {
            total: 3,
            done: AtomicUsize::new(3),
            running: AtomicUsize::new(0),
            stop: Mutex::new(false),
            stopped: Condvar::new(),
        });
        let waiter = std::thread::spawn({
            let progress = Arc::clone(&progress);
            move || {
                let guard = progress.stop.lock().expect("stop lock");
                let (_guard, timeout) = progress
                    .stopped
                    .wait_timeout_while(guard, Duration::from_secs(30), |stopped| !*stopped)
                    .expect("stop lock");
                timeout.timed_out()
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        progress.request_stop();
        let timed_out = waiter.join().expect("waiter thread");
        assert!(!timed_out, "stop must wake the wait, not let it time out");
    }

    #[test]
    fn zero_jobs_degrades_to_serial() {
        assert_eq!(run_parallel(0, vec![5u32], |v| v + 1), vec![6]);
        assert_eq!(run_parallel(0, Vec::<u32>::new(), |v| v + 1), vec![]);
    }
}
