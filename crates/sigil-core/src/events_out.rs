//! The event-file output representation (paper §II-A, §II-C2).
//!
//! "Sigil can represent output data in two ways: (1) by reporting the
//! aggregates … (2) by recording a list of all of the data transfers that
//! occur. In the latter representation, a program's essence can be
//! reconstructed as a sequence of dependent 'events'. These events are
//! fragments of computation separated by data transfer edges."

use serde::{Deserialize, Serialize};
use sigil_callgrind::ContextId;
use sigil_trace::CallNumber;

/// One record of the event file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventRecord {
    /// A dynamic call: `call` (executing in context `ctx`) was entered
    /// from `parent_call`.
    Call {
        /// The dynamic call of the caller (`CallNumber::ROOT` for the
        /// program entry).
        parent_call: CallNumber,
        /// The new dynamic call.
        call: CallNumber,
        /// The function context the new call executes in.
        ctx: ContextId,
    },
    /// A fragment of computation: `ops` retired operations performed by
    /// `call` since its previous fragment.
    Compute {
        /// The dynamic call performing the work.
        call: CallNumber,
        /// Its function context.
        ctx: ContextId,
        /// Retired operations in this fragment.
        ops: u64,
    },
    /// A data transfer: `to_call` consumed `bytes` unique bytes produced
    /// by `from_call`.
    Transfer {
        /// Producer dynamic call.
        from_call: CallNumber,
        /// Consumer dynamic call.
        to_call: CallNumber,
        /// Unique bytes moved.
        bytes: u64,
    },
}

/// The execution as an ordered list of dependent events.
///
/// Order *between* functions is preserved; order of events *within* a
/// function fragment is not (the paper makes the same simplification).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventFile {
    records: Vec<EventRecord>,
}

impl EventFile {
    /// Creates an empty event file.
    pub fn new() -> Self {
        EventFile::default()
    }

    /// Appends a call record.
    pub fn push_call(&mut self, parent_call: CallNumber, call: CallNumber, ctx: ContextId) {
        self.records.push(EventRecord::Call {
            parent_call,
            call,
            ctx,
        });
    }

    /// Appends a compute fragment (no-op when `ops == 0`).
    pub fn push_compute(&mut self, call: CallNumber, ctx: ContextId, ops: u64) {
        if ops == 0 {
            return;
        }
        self.records.push(EventRecord::Compute { call, ctx, ops });
    }

    /// Appends a transfer, coalescing with an immediately preceding
    /// transfer between the same pair of calls.
    ///
    /// Coalescing uses checked accumulation: if the merged byte count
    /// would overflow `u64`, the transfer is kept as a separate record
    /// instead (lossless — the total is preserved across two records),
    /// rather than wrapping in release builds and panicking in debug.
    pub fn push_transfer(&mut self, from_call: CallNumber, to_call: CallNumber, bytes: u64) {
        if bytes == 0 {
            return;
        }
        if let Some(EventRecord::Transfer {
            from_call: f,
            to_call: t,
            bytes: b,
        }) = self.records.last_mut()
        {
            if *f == from_call && *t == to_call {
                if let Some(sum) = b.checked_add(bytes) {
                    *b = sum;
                    return;
                }
            }
        }
        self.records.push(EventRecord::Transfer {
            from_call,
            to_call,
            bytes,
        });
    }

    /// Wraps an already-ordered record list without re-coalescing —
    /// decoders that must reproduce a file byte-for-byte (e.g. the
    /// binary reader in [`crate::events_bin`]) use this.
    pub fn from_records(records: Vec<EventRecord>) -> Self {
        EventFile { records }
    }

    /// The records, in program order.
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total compute ops across all fragments (the serial length used as
    /// the numerator of the parallelism limit).
    pub fn total_ops(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match r {
                EventRecord::Compute { ops, .. } => *ops,
                _ => 0,
            })
            .sum()
    }

    /// Total unique bytes transferred.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match r {
                EventRecord::Transfer { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Renders the event file in a line-oriented text format, the
    /// exchange format the paper's "post processing scripts" consume:
    ///
    /// ```text
    /// CALL parent=<n> call=<n> ctx=<n>
    /// COMP call=<n> ctx=<n> ops=<n>
    /// XFER from=<n> to=<n> bytes=<n>
    /// ```
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.records.len() * 32);
        for record in &self.records {
            match *record {
                EventRecord::Call {
                    parent_call,
                    call,
                    ctx,
                } => {
                    let _ = writeln!(
                        out,
                        "CALL parent={} call={} ctx={}",
                        parent_call.as_raw(),
                        call.as_raw(),
                        ctx.0
                    );
                }
                EventRecord::Compute { call, ctx, ops } => {
                    let _ = writeln!(out, "COMP call={} ctx={} ops={ops}", call.as_raw(), ctx.0);
                }
                EventRecord::Transfer {
                    from_call,
                    to_call,
                    bytes,
                } => {
                    let _ = writeln!(
                        out,
                        "XFER from={} to={} bytes={bytes}",
                        from_call.as_raw(),
                        to_call.as_raw()
                    );
                }
            }
        }
        out
    }

    /// Parses the format produced by [`EventFile::to_text`].
    ///
    /// Each record line must carry exactly its documented fields —
    /// trailing tokens (`COMP call=1 ctx=0 ops=5 junk=9`) are rejected,
    /// not silently dropped.
    ///
    /// # Errors
    ///
    /// Returns `(line_number, message)` for the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, (usize, String)> {
        fn field(token: Option<&str>, key: &str, line: usize) -> Result<u64, (usize, String)> {
            let token = token.ok_or_else(|| (line, format!("missing `{key}=` field")))?;
            let value = token
                .strip_prefix(key)
                .and_then(|t| t.strip_prefix('='))
                .ok_or_else(|| (line, format!("expected `{key}=`, got `{token}`")))?;
            value
                .parse()
                .map_err(|_| (line, format!("bad number in `{token}`")))
        }

        fn end(
            mut parts: std::str::SplitWhitespace<'_>,
            line: usize,
        ) -> Result<(), (usize, String)> {
            match parts.next() {
                None => Ok(()),
                Some(extra) => Err((line, format!("unexpected trailing field `{extra}`"))),
            }
        }

        let mut file = EventFile::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let mut parts = trimmed.split_whitespace();
            match parts.next() {
                Some("CALL") => {
                    let parent = field(parts.next(), "parent", line)?;
                    let call = field(parts.next(), "call", line)?;
                    let ctx = field(parts.next(), "ctx", line)?;
                    end(parts, line)?;
                    file.records.push(EventRecord::Call {
                        parent_call: CallNumber::from_raw(parent),
                        call: CallNumber::from_raw(call),
                        ctx: ContextId(
                            u32::try_from(ctx)
                                .map_err(|_| (line, format!("context id {ctx} out of range")))?,
                        ),
                    });
                }
                Some("COMP") => {
                    let call = field(parts.next(), "call", line)?;
                    let ctx = field(parts.next(), "ctx", line)?;
                    let ops = field(parts.next(), "ops", line)?;
                    end(parts, line)?;
                    file.records.push(EventRecord::Compute {
                        call: CallNumber::from_raw(call),
                        ctx: ContextId(
                            u32::try_from(ctx)
                                .map_err(|_| (line, format!("context id {ctx} out of range")))?,
                        ),
                        ops,
                    });
                }
                Some("XFER") => {
                    let from = field(parts.next(), "from", line)?;
                    let to = field(parts.next(), "to", line)?;
                    let bytes = field(parts.next(), "bytes", line)?;
                    end(parts, line)?;
                    file.records.push(EventRecord::Transfer {
                        from_call: CallNumber::from_raw(from),
                        to_call: CallNumber::from_raw(to),
                        bytes,
                    });
                }
                Some(other) => return Err((line, format!("unknown record `{other}`"))),
                None => {}
            }
        }
        Ok(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(n: u64) -> CallNumber {
        CallNumber::from_raw(n)
    }

    #[test]
    fn transfers_coalesce_when_adjacent() {
        let mut f = EventFile::new();
        f.push_transfer(call(1), call(2), 4);
        f.push_transfer(call(1), call(2), 4);
        assert_eq!(f.len(), 1);
        assert_eq!(f.total_transfer_bytes(), 8);
        f.push_transfer(call(1), call(3), 4);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn zero_sized_records_are_dropped() {
        let mut f = EventFile::new();
        f.push_compute(call(1), ContextId(1), 0);
        f.push_transfer(call(1), call(2), 0);
        assert!(f.is_empty());
    }

    #[test]
    fn totals_sum_by_kind() {
        let mut f = EventFile::new();
        f.push_call(CallNumber::ROOT, call(1), ContextId(1));
        f.push_compute(call(1), ContextId(1), 10);
        f.push_transfer(call(1), call(2), 6);
        f.push_compute(call(2), ContextId(2), 20);
        assert_eq!(f.total_ops(), 30);
        assert_eq!(f.total_transfer_bytes(), 6);
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn text_format_round_trips() {
        let mut f = EventFile::new();
        f.push_call(CallNumber::ROOT, call(1), ContextId(1));
        f.push_compute(call(1), ContextId(1), 42);
        f.push_transfer(call(1), call(2), 16);
        let text = f.to_text();
        assert!(text.contains("CALL parent=0 call=1 ctx=1"));
        assert!(text.contains("COMP call=1 ctx=1 ops=42"));
        assert!(text.contains("XFER from=1 to=2 bytes=16"));
        let parsed = EventFile::from_text(&text).expect("parses");
        assert_eq!(parsed, f);
    }

    #[test]
    fn text_parser_skips_comments_and_reports_errors() {
        let parsed = EventFile::from_text("# header\n\nCOMP call=1 ctx=0 ops=5\n").expect("ok");
        assert_eq!(parsed.total_ops(), 5);

        let err = EventFile::from_text("BOGUS x=1\n").unwrap_err();
        assert_eq!(err.0, 1);
        assert!(err.1.contains("BOGUS"));

        let err = EventFile::from_text("COMP call=1 ctx=0\n").unwrap_err();
        assert!(err.1.contains("ops"));

        let err = EventFile::from_text("XFER from=1 to=2 bytes=lots\n").unwrap_err();
        assert!(err.1.contains("bad number"));
    }

    #[test]
    fn trailing_tokens_are_rejected() {
        for case in [
            "CALL parent=0 call=1 ctx=1 junk=9",
            "COMP call=1 ctx=0 ops=5 junk=9",
            "XFER from=1 to=2 bytes=4 5",
        ] {
            let (line, msg) = EventFile::from_text(case).expect_err(case);
            assert_eq!(line, 1, "{case}");
            assert!(msg.contains("trailing"), "{case}: {msg}");
        }
    }

    #[test]
    fn transfer_coalescing_never_overflows() {
        let mut f = EventFile::new();
        f.push_transfer(call(1), call(2), u64::MAX - 3);
        f.push_transfer(call(1), call(2), 3); // exact fit: coalesces
        assert_eq!(f.len(), 1);
        assert_eq!(f.total_transfer_bytes(), u64::MAX);
        f.push_transfer(call(1), call(2), 1); // would overflow: new record
        assert_eq!(f.len(), 2);
        assert_eq!(
            f.records(),
            &[
                EventRecord::Transfer {
                    from_call: call(1),
                    to_call: call(2),
                    bytes: u64::MAX,
                },
                EventRecord::Transfer {
                    from_call: call(1),
                    to_call: call(2),
                    bytes: 1,
                },
            ]
        );
        // The follow-up record keeps coalescing normally.
        f.push_transfer(call(1), call(2), 7);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn interleaved_transfers_do_not_coalesce() {
        let mut f = EventFile::new();
        f.push_transfer(call(1), call(2), 4);
        f.push_compute(call(2), ContextId(2), 1);
        f.push_transfer(call(1), call(2), 4);
        assert_eq!(f.len(), 3);
    }
}
