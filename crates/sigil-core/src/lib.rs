//! The Sigil profiler.
//!
//! This crate implements the core methodology of *"Platform-independent
//! analysis of function-level communication in workloads"* (IISWC 2013):
//!
//! * **Producer/consumer tracking** — a shadow object per data byte
//!   records the last writer (function context + call number) and last
//!   reader, so every read can be attributed to the function that
//!   produced the value (§II-B, Table I).
//! * **Classification** — every communicated byte is classified on two
//!   axes: *input/output/local* and *unique/non-unique* (§II-A). Unique
//!   bytes are the true read/write set of a function — what a well-built
//!   accelerator with an internal buffer would actually transfer.
//! * **Reuse mode** — per-byte reuse counts and reuse lifetimes (time
//!   between first and last read of a byte within a function call,
//!   measured in retired ops), aggregated into per-function histograms
//!   (§IV-B, Figures 8–11).
//! * **Line mode** — shadowing per cache line instead of per byte
//!   (§IV-B3, Figure 12).
//! * **Two output representations** — per-function(-context) aggregates,
//!   or an *event file*: the execution as a sequence of dependent
//!   compute fragments separated by data-transfer edges, consumed by the
//!   critical-path analysis (§II-C2, Figure 3).
//!
//! Exactly as the paper's tool "hooks into Callgrind", [`SigilProfiler`]
//! embeds a [`sigil_callgrind::CallgrindProfiler`] for function/context
//! identification, op counting and cycle estimation, and layers shadow
//! memory on top.
//!
//! # Example
//!
//! ```
//! use sigil_core::{SigilConfig, SigilProfiler};
//! use sigil_trace::{Engine, OpClass};
//!
//! let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
//! let main = engine.symbols_mut().intern("main");
//! engine.call(main);
//! engine.scoped_named("producer", |e| e.write(0x100, 8));
//! engine.scoped_named("consumer", |e| {
//!     e.read(0x100, 8); // unique input, produced by `producer`
//!     e.read(0x100, 8); // non-unique (re-read within the same call)
//! });
//! engine.ret();
//! let (profiler, symbols) = engine.finish_with_symbols();
//! let profile = profiler.into_profile(symbols);
//!
//! let consumer = profile.function_by_name("consumer").unwrap();
//! assert_eq!(consumer.comm.input_unique_bytes, 8);
//! assert_eq!(consumer.comm.input_nonunique_bytes, 8);
//! let producer = profile.function_by_name("producer").unwrap();
//! assert_eq!(producer.comm.output_unique_bytes, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod events_bin;
pub mod events_out;
pub mod phase;
pub mod profile;
pub mod profiler;
pub mod report;
pub mod reuse;
pub mod shard;
pub mod stats;
pub mod sweep;

pub use config::SigilConfig;
pub use events_bin::{
    decode_events, encode_events, BinError, BinReader, BinTotals, BinWriter, ChunkInfo, ChunkStream,
};
pub use events_out::{EventFile, EventRecord};
pub use phase::{PhaseBucket, PhaseBuilder, PhasePair, PhaseProfile};
pub use profile::{ContextComm, FunctionComm, Profile};
pub use profiler::{LineReport, SigilProfiler};
pub use reuse::{ContextReuse, LifetimeHistogram, ReuseBucket};
pub use shard::{merge_fragments, ShardFragment};
pub use stats::{CommEdge, CommStats};
pub use sweep::{clamp_jobs, clamp_jobs_to, SweepEntry};
