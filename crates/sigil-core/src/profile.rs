//! The finished Sigil profile and its query API.

use serde::{Deserialize, Serialize};
use sigil_callgrind::{CallgrindProfile, ContextId, CostVec};
use sigil_mem::MemoryStats;
use sigil_trace::{FunctionId, SymbolTable};

use crate::events_out::EventFile;
use crate::phase::PhaseProfile;
use crate::profiler::LineReport;
use crate::reuse::ContextReuse;
use crate::stats::{CommEdge, CommStats};

/// Communication totals for one function context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextComm {
    /// The context.
    pub ctx: ContextId,
    /// Its communication totals.
    pub comm: CommStats,
}

/// Per-function totals (summed over the function's contexts).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionComm {
    /// The function.
    pub func: FunctionId,
    /// Its symbol name.
    pub name: String,
    /// Dynamic calls.
    pub calls: u64,
    /// Communication totals.
    pub comm: CommStats,
    /// Callgrind-style exclusive costs.
    pub costs: CostVec,
    /// Estimated cycles for the exclusive costs.
    pub cycles: u64,
}

/// Everything Sigil measured in one run.
///
/// Combines the embedded Callgrind profile (calltree, costs, cycle model)
/// with Sigil's communication classification, and optionally reuse
/// aggregates, a line-granularity report, and the event file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profile {
    /// The embedded Callgrind-like profile.
    pub callgrind: CallgrindProfile,
    /// Per-context communication, indexed by raw context id.
    pub contexts: Vec<ContextComm>,
    /// Data-dependency edges between contexts (the CDFG's dashed edges).
    pub edges: Vec<CommEdge>,
    /// Per-context reuse aggregates (present in reuse mode).
    pub reuse: Option<Vec<ContextReuse>>,
    /// Line-granularity report (present in line mode).
    pub lines: Option<LineReport>,
    /// The event file (present when event recording was enabled).
    pub events: Option<EventFile>,
    /// Phase-sliced communication profile (present when phase
    /// collection was enabled).
    pub phases: Option<PhaseProfile>,
    /// Shadow-memory footprint at end of run.
    pub memory: MemoryStats,
}

impl Profile {
    /// The symbol table naming all functions.
    pub fn symbols(&self) -> &SymbolTable {
        &self.callgrind.symbols
    }

    /// Communication totals for one context (zeros if it never
    /// communicated).
    pub fn context_comm(&self, ctx: ContextId) -> CommStats {
        self.contexts
            .get(ctx.index())
            .map_or_else(CommStats::default, |c| c.comm)
    }

    /// Per-function totals, sorted by estimated cycles descending.
    pub fn function_rows(&self) -> Vec<FunctionComm> {
        use std::collections::HashMap;
        let mut rows: HashMap<FunctionId, FunctionComm> = HashMap::new();
        for (ctx, node) in self.callgrind.tree.iter() {
            let Some(func) = node.func else { continue };
            let row = rows.entry(func).or_insert_with(|| FunctionComm {
                func,
                name: self
                    .symbols()
                    .get_name(func)
                    .map_or_else(|| func.to_string(), str::to_owned),
                calls: 0,
                comm: CommStats::default(),
                costs: CostVec::new(),
                cycles: 0,
            });
            row.calls += node.calls;
            row.costs += node.costs;
            row.comm.merge(&self.context_comm(ctx));
        }
        let mut rows: Vec<FunctionComm> = rows
            .into_values()
            .map(|mut row| {
                row.cycles = self.callgrind.cycle_model.estimate(&row.costs);
                row
            })
            .collect();
        rows.sort_by(|a, b| b.cycles.cmp(&a.cycles).then_with(|| a.name.cmp(&b.name)));
        rows
    }

    /// Totals for the function named `name`, if it was ever called.
    pub fn function_by_name(&self, name: &str) -> Option<FunctionComm> {
        let func = self.symbols().lookup(name)?;
        self.function_rows().into_iter().find(|r| r.func == func)
    }

    /// Reuse aggregates summed over all contexts of the function named
    /// `name` (reuse mode only).
    pub fn context_reuse_by_name(&self, name: &str) -> Option<ContextReuse> {
        let reuse = self.reuse.as_ref()?;
        let func = self.symbols().lookup(name)?;
        let mut merged: Option<ContextReuse> = None;
        for (ctx, node) in self.callgrind.tree.iter() {
            if node.func != Some(func) {
                continue;
            }
            let Some(row) = reuse.get(ctx.index()) else {
                continue;
            };
            match merged.as_mut() {
                None => {
                    merged = Some(row.clone());
                }
                Some(m) => {
                    // Rows of different contexts: keep the first row's
                    // label, fold the counters via the shard-merge
                    // algebra (ContextReuse::merge asserts matching ctx
                    // in debug builds, so realign first).
                    let mut row = row.clone();
                    row.ctx = m.ctx;
                    m.merge(&row);
                }
            }
        }
        merged
    }

    /// Whole-program reuse-count breakdown (Figure 8): returns
    /// `(zero, one_to_nine, more_than_nine)` byte-record counts.
    pub fn reuse_breakdown(&self) -> Option<(u64, u64, u64)> {
        let reuse = self.reuse.as_ref()?;
        let mut totals = (0u64, 0u64, 0u64);
        for row in reuse {
            totals.0 += row.zero_reuse_bytes;
            totals.1 += row.low_reuse_bytes;
            totals.2 += row.high_reuse_bytes;
        }
        Some(totals)
    }

    /// Whole-program unique bytes consumed (input + local across all
    /// contexts).
    pub fn total_unique_bytes(&self) -> u64 {
        self.contexts
            .iter()
            .map(|c| c.comm.unique_bytes_consumed())
            .sum()
    }

    /// Whole-program total bytes read.
    pub fn total_bytes_read(&self) -> u64 {
        self.contexts.iter().map(|c| c.comm.bytes_read).sum()
    }

    /// Edges whose producer or consumer is the given context.
    pub fn edges_touching(&self, ctx: ContextId) -> impl Iterator<Item = &CommEdge> {
        self.edges
            .iter()
            .filter(move |e| e.producer == ctx || e.consumer == ctx)
    }

    /// Checks the profile's internal consistency invariants, returning a
    /// description of the first violation.
    ///
    /// Useful after deserializing a profile from an untrusted file.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let tree_len = self.callgrind.tree.len();
        if self.contexts.len() < tree_len {
            return Err(format!(
                "{} communication rows for {tree_len} calltree contexts",
                self.contexts.len()
            ));
        }
        for (i, row) in self.contexts.iter().enumerate() {
            if row.ctx.index() != i {
                return Err(format!("context row {i} labelled {}", row.ctx));
            }
            let c = row.comm;
            let classified = c.input_unique_bytes
                + c.input_nonunique_bytes
                + c.local_unique_bytes
                + c.local_nonunique_bytes;
            if classified != c.bytes_read {
                return Err(format!(
                    "{}: classified reads {classified} != total reads {}",
                    row.ctx, c.bytes_read
                ));
            }
        }
        for edge in &self.edges {
            if edge.producer.index() >= tree_len || edge.consumer.index() >= tree_len {
                return Err(format!(
                    "edge {} -> {} references a missing context",
                    edge.producer, edge.consumer
                ));
            }
        }
        let edge_unique: u64 = self.edges.iter().map(|e| e.unique_bytes).sum();
        let input_unique: u64 = self
            .contexts
            .iter()
            .map(|c| c.comm.input_unique_bytes)
            .sum();
        if edge_unique != input_unique {
            return Err(format!(
                "edge unique bytes {edge_unique} != context input unique bytes {input_unique}"
            ));
        }
        if let Some(reuse) = &self.reuse {
            if reuse.len() > tree_len {
                return Err(format!(
                    "{} reuse rows for {tree_len} contexts",
                    reuse.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SigilConfig;
    use crate::profiler::SigilProfiler;
    use sigil_trace::Engine;

    fn two_function_profile() -> Profile {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
        engine.scoped_named("main", |e| {
            e.scoped_named("a", |e| e.write(0x10, 4));
            e.scoped_named("b", |e| e.read(0x10, 4));
        });
        let (p, s) = engine.finish_with_symbols();
        p.into_profile(s)
    }

    #[test]
    fn function_rows_cover_all_functions() {
        let profile = two_function_profile();
        let names: Vec<String> = profile
            .function_rows()
            .into_iter()
            .map(|r| r.name)
            .collect();
        assert!(names.contains(&"main".to_owned()));
        assert!(names.contains(&"a".to_owned()));
        assert!(names.contains(&"b".to_owned()));
    }

    #[test]
    fn unknown_function_lookup_is_none() {
        let profile = two_function_profile();
        assert!(profile.function_by_name("missing").is_none());
        assert!(profile.context_reuse_by_name("a").is_none(), "reuse off");
    }

    #[test]
    fn totals_are_consistent() {
        let profile = two_function_profile();
        assert_eq!(profile.total_bytes_read(), 4);
        assert_eq!(profile.total_unique_bytes(), 4);
        assert!(profile.reuse_breakdown().is_none());
    }

    #[test]
    fn validate_accepts_real_profiles() {
        let profile = two_function_profile();
        profile.validate().expect("fresh profiles are consistent");
    }

    #[test]
    fn validate_catches_tampering() {
        let mut profile = two_function_profile();
        profile.contexts[1].comm.bytes_read += 1;
        assert!(profile.validate().is_err());

        let mut profile = two_function_profile();
        profile.edges[0].unique_bytes += 8;
        let err = profile.validate().unwrap_err();
        assert!(err.contains("unique bytes"));
    }

    #[test]
    fn edges_touching_filters() {
        let profile = two_function_profile();
        assert_eq!(profile.edges.len(), 1);
        let edge = profile.edges[0];
        assert_eq!(profile.edges_touching(edge.producer).count(), 1);
        assert_eq!(profile.edges_touching(ContextId(999)).count(), 0);
    }
}
