//! Phase-sliced communication profiles.
//!
//! The aggregate profile answers "how much does pair *(A, B)*
//! communicate"; a [`PhaseProfile`] answers "**when**". Call and
//! transfer tallies are folded into fixed-width buckets along the
//! *phase clock* — the cumulative count of event-stream-visible retired
//! ops — keyed by `(producer context, consumer context)`.
//!
//! # The phase clock
//!
//! The bucket axis must be computable identically by three independent
//! paths: the serial profiler, the sharded profiler (through the
//! [`crate::shard::ShardFragment`] merge monoid), and a bounded-memory
//! streaming fold over an SGEB `.evb` file that never sees the shadow
//! memory. The full op clock does not survive into the event stream
//! (returns, thread switches, and zero-size accesses retire ops but
//! leave no record), so the phase clock counts exactly the ops the
//! event representation *can* see, in stream order:
//!
//! * a `Call` record (function call or syscall entry) ticks the clock
//!   by 1, and the call itself is tallied at the **pre**-tick time;
//! * a `Compute { ops }` record advances the clock by `ops` — in replay
//!   terms, every increment of the open frame's pending-op counter
//!   (explicit ops, branches, and each non-empty read/write access)
//!   ticks the clock by 1 at the moment it happens;
//! * a `Transfer` is tallied at the current clock — for a read access,
//!   *after* the access's own tick, matching the event file where the
//!   pending-compute flush precedes the transfer records.
//!
//! Ops retired with no open frame are dropped by the event sequencer,
//! so they do not tick the phase clock either.
//!
//! # Bucketing
//!
//! A timestamp `t` lands in bucket `t / bucket_ops` — boundary
//! timestamps belong to the *higher* bucket, and the last bucket is a
//! plain half-open interval like every other (nothing is clamped into
//! it). Only non-empty buckets are stored, sorted by index; pairs are
//! sorted by `(from, to)`. Two equal profiles therefore serialize to
//! identical bytes, which is how the serial/sharded/streaming
//! equivalence is asserted in tests and CI.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use sigil_callgrind::ContextId;

/// One non-empty bucket of a pair's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseBucket {
    /// Bucket index: `timestamp / bucket_ops`.
    pub index: u64,
    /// Calls from `from` entering `to` in this bucket.
    pub calls: u64,
    /// Unique bytes flowing `from → to` in this bucket.
    pub xfer_bytes: u64,
}

/// Bucketed activity of one `(producer, consumer)` context pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhasePair {
    /// Producing (for transfers) or calling (for calls) context.
    pub from: ContextId,
    /// Consuming or called context.
    pub to: ContextId,
    /// Non-empty buckets, sorted by index.
    pub buckets: Vec<PhaseBucket>,
}

/// A communication profile sliced into fixed-width phase buckets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Bucket width along the phase clock, in retired ops.
    pub bucket_ops: u64,
    /// Pair rows, sorted by `(from, to)`.
    pub pairs: Vec<PhasePair>,
}

impl PhaseProfile {
    /// An empty profile with the given bucket width (clamped to ≥ 1).
    pub fn empty(bucket_ops: u64) -> Self {
        PhaseProfile {
            bucket_ops: bucket_ops.max(1),
            pairs: Vec::new(),
        }
    }

    /// Number of buckets spanned: one past the highest non-empty index
    /// (0 for an empty profile).
    pub fn num_buckets(&self) -> u64 {
        self.pairs
            .iter()
            .flat_map(|p| p.buckets.iter())
            .map(|b| b.index + 1)
            .max()
            .unwrap_or(0)
    }

    /// Folds `other` into `self` cell by cell. Commutative and
    /// associative with [`PhaseProfile::empty`] as identity — the merge
    /// the shard workers' per-fragment profiles flow through.
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths differ (shards always share one
    /// config, so this is a programming error).
    pub fn merge(&mut self, other: &PhaseProfile) {
        assert_eq!(
            self.bucket_ops, other.bucket_ops,
            "merging phase profiles with different bucket widths"
        );
        let mut builder = PhaseBuilder::new(self.bucket_ops);
        builder.absorb(self);
        builder.absorb(other);
        *self = builder.finish();
    }
}

/// Accumulates call/transfer tallies and renders them as a canonical
/// (sorted, sparse) [`PhaseProfile`].
#[derive(Debug, Clone)]
pub struct PhaseBuilder {
    bucket_ops: u64,
    cells: BTreeMap<(ContextId, ContextId), BTreeMap<u64, (u64, u64)>>,
}

impl PhaseBuilder {
    /// A fresh builder with the given bucket width (clamped to ≥ 1).
    pub fn new(bucket_ops: u64) -> Self {
        PhaseBuilder {
            bucket_ops: bucket_ops.max(1),
            cells: BTreeMap::new(),
        }
    }

    /// The bucket index a phase-clock timestamp falls into.
    pub fn bucket_of(&self, at: u64) -> u64 {
        at / self.bucket_ops
    }

    fn cell(&mut self, from: ContextId, to: ContextId, at: u64) -> &mut (u64, u64) {
        let index = self.bucket_of(at);
        self.cells
            .entry((from, to))
            .or_default()
            .entry(index)
            .or_insert((0, 0))
    }

    /// Tallies one call `from → to` at phase time `at`.
    pub fn record_call(&mut self, from: ContextId, to: ContextId, at: u64) {
        self.cell(from, to, at).0 += 1;
    }

    /// Tallies `bytes` transferred `from → to` at phase time `at`.
    pub fn record_transfer(&mut self, from: ContextId, to: ContextId, at: u64, bytes: u64) {
        if bytes > 0 {
            self.cell(from, to, at).1 += bytes;
        }
    }

    /// Folds an already-built profile into the builder (used by
    /// [`PhaseProfile::merge`]).
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths differ.
    pub fn absorb(&mut self, profile: &PhaseProfile) {
        assert_eq!(self.bucket_ops, profile.bucket_ops, "bucket width mismatch");
        for pair in &profile.pairs {
            let row = self.cells.entry((pair.from, pair.to)).or_default();
            for bucket in &pair.buckets {
                let cell = row.entry(bucket.index).or_insert((0, 0));
                cell.0 += bucket.calls;
                cell.1 += bucket.xfer_bytes;
            }
        }
    }

    /// Renders the canonical profile: pairs sorted by `(from, to)`,
    /// buckets sorted by index, empty cells dropped.
    pub fn finish(self) -> PhaseProfile {
        let pairs = self
            .cells
            .into_iter()
            .filter_map(|((from, to), row)| {
                let buckets: Vec<PhaseBucket> = row
                    .into_iter()
                    .filter(|&(_, (calls, bytes))| calls > 0 || bytes > 0)
                    .map(|(index, (calls, xfer_bytes))| PhaseBucket {
                        index,
                        calls,
                        xfer_bytes,
                    })
                    .collect();
                (!buckets.is_empty()).then_some(PhasePair { from, to, buckets })
            })
            .collect();
        PhaseProfile {
            bucket_ops: self.bucket_ops,
            pairs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_timestamps_land_in_the_higher_bucket() {
        let mut b = PhaseBuilder::new(100);
        b.record_call(ContextId(1), ContextId(2), 99);
        b.record_call(ContextId(1), ContextId(2), 100);
        b.record_transfer(ContextId(1), ContextId(2), 199, 8);
        b.record_transfer(ContextId(1), ContextId(2), 200, 4);
        let profile = b.finish();
        assert_eq!(profile.pairs.len(), 1);
        assert_eq!(
            profile.pairs[0].buckets,
            vec![
                PhaseBucket {
                    index: 0,
                    calls: 1,
                    xfer_bytes: 0
                },
                PhaseBucket {
                    index: 1,
                    calls: 1,
                    xfer_bytes: 8
                },
                PhaseBucket {
                    index: 2,
                    calls: 0,
                    xfer_bytes: 4
                },
            ]
        );
        assert_eq!(profile.num_buckets(), 3);
    }

    #[test]
    fn zero_width_clamps_and_zero_byte_transfers_vanish() {
        let mut b = PhaseBuilder::new(0);
        assert_eq!(b.bucket_of(7), 7, "width clamped to 1");
        b.record_transfer(ContextId(0), ContextId(1), 3, 0);
        assert_eq!(b.finish().pairs, Vec::new());
        assert_eq!(PhaseProfile::empty(0).bucket_ops, 1);
    }

    #[test]
    fn merge_is_commutative_with_empty_identity() {
        let mut a = PhaseBuilder::new(10);
        a.record_call(ContextId(1), ContextId(2), 5);
        a.record_transfer(ContextId(2), ContextId(3), 25, 16);
        let a = a.finish();
        let mut b = PhaseBuilder::new(10);
        b.record_call(ContextId(1), ContextId(2), 7);
        b.record_transfer(ContextId(0), ContextId(1), 3, 2);
        let b = b.finish();

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        let mut with_empty = a.clone();
        with_empty.merge(&PhaseProfile::empty(10));
        assert_eq!(with_empty, a);

        // Same cell sums.
        assert_eq!(ab.pairs[1].buckets[0].calls, 2);
    }

    #[test]
    fn serde_round_trip_is_byte_stable() {
        let mut b = PhaseBuilder::new(50);
        b.record_call(ContextId(3), ContextId(4), 0);
        b.record_transfer(ContextId(1), ContextId(4), 120, 64);
        let profile = b.finish();
        let json = serde_json::to_string(&profile).expect("serializes");
        let back: PhaseProfile = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, profile);
        assert_eq!(serde_json::to_string(&back).expect("re-serializes"), json);
    }
}
