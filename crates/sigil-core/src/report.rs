//! Human-readable text reports of a [`Profile`].

use std::fmt::Write as _;

use crate::profile::Profile;

/// Renders the per-function communication table: calls, cycles, and the
/// input/output/local × unique/non-unique breakdown, sorted by cycles.
/// Profiles with cross-thread traffic grow an extra inter-thread column
/// pair (`it.uniq`/`it.reuse`); single-threaded reports are unchanged.
pub fn communication_table(profile: &Profile, max_rows: usize) -> String {
    let rows = profile.function_rows();
    let inter = rows
        .iter()
        .any(|r| r.comm.inter_thread_unique_bytes + r.comm.inter_thread_nonunique_bytes > 0);
    let mut out = String::new();
    let _ = write!(
        out,
        "{:>10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "calls", "cycles", "in.uniq", "in.reuse", "out.uniq", "out.reuse", "loc.uniq", "loc.reuse"
    );
    if inter {
        let _ = write!(out, " {:>10} {:>10}", "it.uniq", "it.reuse");
    }
    out.push_str("  function\n");
    for row in rows.iter().take(max_rows) {
        let _ = write!(
            out,
            "{:>10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            row.calls,
            row.cycles,
            row.comm.input_unique_bytes,
            row.comm.input_nonunique_bytes,
            row.comm.output_unique_bytes,
            row.comm.output_nonunique_bytes,
            row.comm.local_unique_bytes,
            row.comm.local_nonunique_bytes,
        );
        if inter {
            let _ = write!(
                out,
                " {:>10} {:>10}",
                row.comm.inter_thread_unique_bytes, row.comm.inter_thread_nonunique_bytes
            );
        }
        let _ = writeln!(out, "  {}", row.name);
    }
    out
}

/// Renders the data-dependency edges with their unique-byte weights, in
/// descending weight order.
pub fn edge_table(profile: &Profile, max_rows: usize) -> String {
    let symbols = profile.symbols();
    let tree = &profile.callgrind.tree;
    let mut edges = profile.edges.clone();
    edges.sort_by_key(|e| std::cmp::Reverse(e.unique_bytes));
    let mut out = String::new();
    let _ = writeln!(out, "{:>12} {:>12}  producer -> consumer", "uniq", "reuse");
    for edge in edges.iter().take(max_rows) {
        let _ = writeln!(
            out,
            "{:>12} {:>12}  {} -> {}",
            edge.unique_bytes,
            edge.nonunique_bytes,
            tree.path_label(edge.producer, symbols),
            tree.path_label(edge.consumer, symbols),
        );
    }
    out
}

/// Renders the reuse summary (reuse mode only).
pub fn reuse_summary(profile: &Profile) -> Option<String> {
    let (zero, low, high) = profile.reuse_breakdown()?;
    let total = (zero + low + high).max(1);
    let mut out = String::new();
    let _ = writeln!(out, "data-byte reuse breakdown:");
    let _ = writeln!(
        out,
        "  0 reuses   : {zero:>12} ({:.1}%)",
        100.0 * zero as f64 / total as f64
    );
    let _ = writeln!(
        out,
        "  1-9 reuses : {low:>12} ({:.1}%)",
        100.0 * low as f64 / total as f64
    );
    let _ = writeln!(
        out,
        "  >9 reuses  : {high:>12} ({:.1}%)",
        100.0 * high as f64 / total as f64
    );
    Some(out)
}

/// Renders everything: communication table, top edges, optional reuse and
/// line summaries, and the memory footprint.
pub fn full_report(profile: &Profile) -> String {
    let mut out = String::new();
    out.push_str("== function communication (top 30) ==\n");
    out.push_str(&communication_table(profile, 30));
    out.push_str("\n== data-dependency edges (top 30) ==\n");
    out.push_str(&edge_table(profile, 30));
    if let Some(reuse) = reuse_summary(profile) {
        out.push('\n');
        out.push_str(&reuse);
    }
    if let Some(lines) = &profile.lines {
        let _ = writeln!(
            out,
            "\nline-granularity ({}-byte lines): {} lines touched, buckets {:?}",
            lines.line_size, lines.touched_lines, lines.buckets
        );
    }
    let _ = writeln!(out, "\nshadow memory: {}", profile.memory);
    let _ = writeln!(
        out,
        "shadow hot path: {} accesses ({} MRU hits, {} table probes), {} chunks evicted",
        profile.memory.accesses,
        profile.memory.mru_hits,
        profile.memory.table_probes,
        profile.memory.evicted_chunks
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SigilConfig;
    use crate::profiler::SigilProfiler;
    use sigil_trace::Engine;

    fn sample(config: SigilConfig) -> Profile {
        let mut engine = Engine::new(SigilProfiler::new(config));
        engine.scoped_named("main", |e| {
            e.scoped_named("w", |e| e.write(0x40, 8));
            e.scoped_named("r", |e| {
                e.read(0x40, 8);
                e.read(0x40, 8);
            });
        });
        let (p, s) = engine.finish_with_symbols();
        p.into_profile(s)
    }

    #[test]
    fn communication_table_has_rows_for_each_function() {
        let text = communication_table(&sample(SigilConfig::default()), 10);
        assert!(text.contains("main"));
        assert!(text.contains(" w"));
        assert!(text.contains(" r"));
        // Single-threaded: no inter-thread columns.
        assert!(!text.contains("it.uniq"));
    }

    #[test]
    fn communication_table_adds_inter_thread_columns_when_present() {
        use sigil_trace::ThreadId;
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
        engine.scoped_named("main", |e| e.write(0x40, 8));
        engine.switch_thread(ThreadId::from_raw(1));
        engine.scoped_named("consume", |e| e.read(0x40, 8));
        engine.switch_thread(ThreadId::MAIN);
        let (p, s) = engine.finish_with_symbols();
        let text = communication_table(&p.into_profile(s), 10);
        assert!(text.contains("it.uniq"));
        assert!(text.contains("consume"));
    }

    #[test]
    fn edge_table_shows_paths() {
        let text = edge_table(&sample(SigilConfig::default()), 10);
        assert!(text.contains("->"));
        assert!(text.contains("main"));
    }

    #[test]
    fn reuse_summary_requires_reuse_mode() {
        assert!(reuse_summary(&sample(SigilConfig::default())).is_none());
        let text =
            reuse_summary(&sample(SigilConfig::default().with_reuse_mode())).expect("reuse on");
        assert!(text.contains("0 reuses"));
    }

    #[test]
    fn full_report_mentions_memory() {
        let text = full_report(&sample(SigilConfig::default().with_line_mode(64)));
        assert!(text.contains("shadow memory"));
        assert!(text.contains("line-granularity"));
    }
}
