//! Property tests for the sharding layer.
//!
//! Two invariants carry the whole sharded design (see
//! `sigil_core::shard`):
//!
//! 1. **The merge algebra is order-free** — folding per-shard
//!    [`ShardFragment`]s in *any* permutation yields the same result, so
//!    the join order of shard workers can never leak into a profile.
//! 2. **The twin profilers agree** — replaying one random event stream
//!    through a serial and a sharded [`SigilProfiler`] produces
//!    byte-identical profiles, under tiny FIFO/LRU shadow limits and
//!    with accesses that straddle chunk (hence shard) boundaries.

use proptest::prelude::*;
use sigil_callgrind::ContextId;
use sigil_core::{merge_fragments, ContextReuse, ShardFragment, SigilConfig, SigilProfiler};
use sigil_core::{CommEdge, CommStats, PhaseBuilder, PhaseProfile};
use sigil_mem::{EvictionPolicy, MemoryStats};
use sigil_trace::{Engine, OpClass, ThreadId};

// ---------------------------------------------------------------------
// Fragment strategies. Generated fragments respect the two invariants
// real `ShardResult::into_fragment` outputs hold: edges are unique and
// sorted by `(producer, consumer)`, and reuse row `i` belongs to
// context id `i`.
// ---------------------------------------------------------------------

fn arb_comm() -> impl Strategy<Value = CommStats> {
    proptest::collection::vec(0u64..200, 10..11).prop_map(|v| CommStats {
        input_unique_bytes: v[0],
        input_nonunique_bytes: v[1],
        local_unique_bytes: v[2],
        local_nonunique_bytes: v[3],
        output_unique_bytes: v[4],
        output_nonunique_bytes: v[5],
        inter_thread_unique_bytes: v[6],
        inter_thread_nonunique_bytes: v[7],
        bytes_read: v[8],
        bytes_written: v[9],
    })
}

fn arb_edges() -> impl Strategy<Value = Vec<CommEdge>> {
    proptest::collection::vec((0u32..5, 0u32..5, 0u64..100, 0u64..100), 0..6).prop_map(|raw| {
        let mut map = std::collections::BTreeMap::new();
        for (p, c, unique, nonunique) in raw {
            let entry = map.entry((p, c)).or_insert((0u64, 0u64));
            entry.0 += unique;
            entry.1 += nonunique;
        }
        map.into_iter()
            .map(|((p, c), (unique, nonunique))| CommEdge {
                producer: ContextId(p),
                consumer: ContextId(c),
                unique_bytes: unique,
                nonunique_bytes: nonunique,
            })
            .collect()
    })
}

fn arb_reuse() -> impl Strategy<Value = Option<Vec<ContextReuse>>> {
    (
        0u8..2,
        proptest::collection::vec(proptest::collection::vec((0u64..6, 0u64..5000), 0..5), 0..4),
    )
        .prop_map(|(some, rows)| {
            (some == 1).then(|| {
                rows.into_iter()
                    .enumerate()
                    .map(|(i, hits)| {
                        let mut row = ContextReuse::new(ContextId(u32::try_from(i).unwrap()));
                        for (count, lifetime) in hits {
                            row.record(count, lifetime);
                        }
                        row
                    })
                    .collect()
            })
        })
}

fn arb_memory() -> impl Strategy<Value = MemoryStats> {
    proptest::collection::vec(0u64..1000, 9..10).prop_map(|v| MemoryStats {
        resident_chunks: v[0],
        resident_slots: v[1],
        resident_bytes: v[2],
        evicted_chunks: v[3],
        accesses: v[4],
        mru_hits: v[5],
        table_probes: v[6],
        runs: v[7],
        run_bytes: v[8],
    })
}

/// Phase profiles share one bucket width (merging mixed widths is a
/// programming error and panics), built through the real
/// [`PhaseBuilder`] so the canonical sparse/sorted shape holds.
fn arb_phases() -> impl Strategy<Value = Option<PhaseProfile>> {
    (
        0u8..2,
        proptest::collection::vec((0u32..4, 0u32..4, 0u64..64, 0u64..3, 0u64..200), 0..8),
    )
        .prop_map(|(some, cells)| {
            (some == 1).then(|| {
                let mut builder = PhaseBuilder::new(8);
                for (from, to, at, calls, bytes) in cells {
                    for _ in 0..calls {
                        builder.record_call(ContextId(from), ContextId(to), at);
                    }
                    builder.record_transfer(ContextId(from), ContextId(to), at, bytes);
                }
                builder.finish()
            })
        })
}

fn arb_fragment() -> impl Strategy<Value = ShardFragment> {
    (
        proptest::collection::vec(arb_comm(), 0..5),
        arb_edges(),
        arb_reuse(),
        arb_phases(),
        arb_memory(),
    )
        .prop_map(|(comm, edges, reuse, phases, memory)| ShardFragment {
            comm,
            edges,
            reuse,
            phases,
            memory,
        })
}

/// Deterministic Fisher–Yates driven by a seed, so failures replay.
fn shuffled(mut frags: Vec<ShardFragment>, mut seed: u64) -> Vec<ShardFragment> {
    for i in (1..frags.len()).rev() {
        // SplitMix64 step: plenty for a test shuffle.
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        frags.swap(i, (z % (i as u64 + 1)) as usize);
    }
    frags
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any permutation of the per-shard fragments merges to the same
    /// profile pieces — the algebra that makes worker join order
    /// irrelevant.
    #[test]
    fn fragment_merge_is_permutation_invariant(
        frags in proptest::collection::vec(arb_fragment(), 1..6),
        seed in any::<u64>(),
    ) {
        let baseline = merge_fragments(frags.clone());
        let mut reversed = frags.clone();
        reversed.reverse();
        prop_assert_eq!(&merge_fragments(reversed), &baseline);
        prop_assert_eq!(&merge_fragments(shuffled(frags, seed)), &baseline);
    }

    /// Merging in the empty fragment (an idle shard) changes nothing.
    #[test]
    fn idle_shards_are_merge_identities(frag in arb_fragment()) {
        let mut left = ShardFragment::default();
        left.merge(&frag);
        let mut right = frag.clone();
        right.merge(&ShardFragment::default());
        prop_assert_eq!(&left, &frag);
        prop_assert_eq!(&right, &frag);
    }
}

// ---------------------------------------------------------------------
// Twin-profiler equivalence on random event streams.
// ---------------------------------------------------------------------

/// One step of a random trace. Addresses concentrate around 4 KiB chunk
/// boundaries so runs regularly split across shards (consecutive chunk
/// keys always map to different shards).
#[derive(Debug, Clone)]
enum Step {
    Call(u8),
    Ret,
    Read(u64, u32),
    Write(u64, u32),
    Ops(u32),
    Switch(u8),
}

fn arb_step() -> impl Strategy<Value = Step> {
    (0u8..9, 0u8..4, 1u64..5, 0u64..24, 1u32..48).prop_map(|(kind, f, chunk, back, len)| {
        // Addresses sit just below a 4 KiB boundary, so `len` up to 48
        // regularly carries the run into the next chunk — and therefore
        // onto a different shard.
        let addr = chunk * 4096 - back;
        match kind {
            0 | 1 => Step::Call(f),
            2 => Step::Ret,
            3 | 4 => Step::Read(addr, len),
            5 | 6 => Step::Write(addr, len),
            7 => Step::Switch(f % 3),
            _ => Step::Ops(len),
        }
    })
}

/// Replays `steps` through a profiler built from `config` and returns
/// the serialized profile.
fn replay(steps: &[Step], config: SigilConfig) -> String {
    let mut engine = Engine::new(SigilProfiler::new(config));
    let funcs: Vec<_> = (0..4)
        .map(|i| engine.symbols_mut().intern(&format!("f{i}")))
        .collect();
    let mut depth = std::collections::HashMap::new();
    for step in steps {
        match *step {
            Step::Call(f) => {
                engine.call(funcs[usize::from(f) % funcs.len()]);
                *depth.entry(engine.current_thread()).or_insert(0u32) += 1;
            }
            Step::Ret => {
                let open = depth.entry(engine.current_thread()).or_insert(0);
                if *open > 0 {
                    engine.ret();
                    *open -= 1;
                }
            }
            Step::Read(addr, len) => engine.read(addr, len),
            Step::Write(addr, len) => engine.write(addr, len),
            Step::Ops(count) => engine.op(OpClass::IntArith, count),
            Step::Switch(t) => engine.switch_thread(ThreadId::from_raw(u32::from(t) + 1)),
        }
    }
    // Close every frame so strict trace validation stays happy; the
    // profilers must agree regardless.
    let mut threads: Vec<_> = depth.into_iter().filter(|&(_, n)| n > 0).collect();
    threads.sort_unstable();
    for (thread, open) in threads {
        engine.switch_thread(thread);
        for _ in 0..open {
            engine.ret();
        }
    }
    let (profiler, symbols) = engine.finish_with_symbols();
    serde_json::to_string(&profiler.into_profile(symbols)).expect("profile serializes")
}

/// `None` (unbounded — the oracle-elided path) or a tiny chunk limit
/// (the dispatch-oracle path with mid-access evictions).
fn arb_limit() -> impl Strategy<Value = Option<usize>> {
    (0u8..2, 1usize..4).prop_map(|(some, limit)| (some == 1).then_some(limit))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sharded profiler is byte-identical to the serial one on
    /// random traces, across shard counts, tiny shadow limits, and both
    /// eviction policies, with reuse + line + event collection all on.
    #[test]
    fn sharded_profiler_matches_serial(
        steps in proptest::collection::vec(arb_step(), 0..60),
        shards in 2usize..9,
        limit in 1usize..4,
        lru in any::<bool>(),
    ) {
        let policy = if lru { EvictionPolicy::Lru } else { EvictionPolicy::Fifo };
        let config = SigilConfig::default()
            .with_reuse_mode()
            .with_line_mode(64)
            .with_events()
            .with_phases(7)
            .with_shadow_limit(limit)
            .with_eviction(policy);
        let serial = replay(&steps, config);
        let sharded = replay(&steps, config.with_shards(shards));
        prop_assert_eq!(serial, sharded);
    }

    /// Pipelined dispatch (run coalescing; oracle elided when
    /// unbounded) is byte-identical to the pinned legacy path (one
    /// record per run, forced dispatch oracle) and to serial replay —
    /// under FIFO/LRU limits with mid-access evictions, and unbounded
    /// where the elided path actually takes over. The generated
    /// addresses straddle chunk boundaries, and every feature
    /// consuming per-access metadata is on, so strided trains must
    /// split back losslessly.
    #[test]
    fn pipelined_dispatch_matches_legacy_dispatch(
        steps in proptest::collection::vec(arb_step(), 0..60),
        shards in 2usize..9,
        limit in arb_limit(),
        lru in any::<bool>(),
    ) {
        let policy = if lru { EvictionPolicy::Lru } else { EvictionPolicy::Fifo };
        let mut config = SigilConfig::default()
            .with_reuse_mode()
            .with_line_mode(64)
            .with_events()
            .with_phases(7)
            .with_eviction(policy);
        if let Some(limit) = limit {
            config = config.with_shadow_limit(limit);
        }
        let serial = replay(&steps, config);
        let pipelined = replay(&steps, config.with_shards(shards));
        let legacy = replay(
            &steps,
            config
                .with_shards(shards)
                .with_forced_dispatch_oracle()
                .without_dispatch_coalescing(),
        );
        prop_assert_eq!(&pipelined, &legacy);
        prop_assert_eq!(&pipelined, &serial);
    }

    /// Same equivalence in baseline mode, where reads coalesce *freely*
    /// (no reuse/events/phases metadata to reconstruct) — straddle
    /// parts and repeated reads may merge into long trains.
    #[test]
    fn free_read_coalescing_matches_legacy_dispatch(
        steps in proptest::collection::vec(arb_step(), 0..60),
        shards in 2usize..9,
        limit in arb_limit(),
    ) {
        let mut config = SigilConfig::default().with_line_mode(64);
        if let Some(limit) = limit {
            config = config.with_shadow_limit(limit);
        }
        let serial = replay(&steps, config);
        let pipelined = replay(&steps, config.with_shards(shards));
        let legacy = replay(
            &steps,
            config
                .with_shards(shards)
                .with_forced_dispatch_oracle()
                .without_dispatch_coalescing(),
        );
        prop_assert_eq!(&pipelined, &legacy);
        prop_assert_eq!(&pipelined, &serial);
    }
}
