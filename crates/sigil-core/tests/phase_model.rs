//! Property tests pinning [`PhaseProfile`] bucketing to a reference
//! model.
//!
//! The production builder keeps sparse per-pair cells and emits a
//! canonical sorted shape; the reference model here is the obvious
//! nested map built with nothing but integer division. Any drift in
//! bucket indexing (floor semantics, boundary timestamps landing in the
//! higher bucket, last-bucket inclusivity) or in the canonical ordering
//! shows up as a counterexample.

use std::collections::BTreeMap;

use proptest::prelude::*;
use sigil_callgrind::ContextId;
use sigil_core::{PhaseBuilder, PhaseProfile};

/// One recorded phase fact: a call or a transfer between two contexts
/// at a phase-clock timestamp.
#[derive(Debug, Clone)]
enum Fact {
    Call {
        from: u32,
        to: u32,
        at: u64,
    },
    Transfer {
        from: u32,
        to: u32,
        at: u64,
        bytes: u64,
    },
}

fn arb_fact() -> impl Strategy<Value = Fact> {
    // Timestamps concentrate near small multiples of common widths so
    // exact boundaries (at % width == 0) are generated often.
    let at = prop_oneof![0u64..64, (0u64..8).prop_map(|k| k * 10), 0u64..10_000];
    (0u8..2, 0u32..5, 0u32..5, at, 0u64..500).prop_map(|(kind, from, to, at, bytes)| {
        if kind == 0 {
            Fact::Call { from, to, at }
        } else {
            Fact::Transfer {
                from,
                to,
                at,
                bytes,
            }
        }
    })
}

/// The reference model: `(from, to) -> bucket index -> (calls, bytes)`,
/// bucket index computed directly as `at / width`.
type Model = BTreeMap<(u32, u32), BTreeMap<u64, (u64, u64)>>;

fn model_of(facts: &[Fact], width: u64) -> Model {
    let width = width.max(1);
    let mut model = Model::new();
    for fact in facts {
        match *fact {
            Fact::Call { from, to, at } => {
                model
                    .entry((from, to))
                    .or_default()
                    .entry(at / width)
                    .or_insert((0, 0))
                    .0 += 1;
            }
            Fact::Transfer {
                from,
                to,
                at,
                bytes,
            } => {
                if bytes == 0 {
                    continue; // zero-byte transfers leave no trace
                }
                model
                    .entry((from, to))
                    .or_default()
                    .entry(at / width)
                    .or_insert((0, 0))
                    .1 += bytes;
            }
        }
    }
    // Cells that never accumulated anything (all-zero) must not appear;
    // the builder drops them, so the model does too.
    for cells in model.values_mut() {
        cells.retain(|_, &mut (calls, bytes)| calls != 0 || bytes != 0);
    }
    model.retain(|_, cells| !cells.is_empty());
    model
}

fn build(facts: &[Fact], width: u64) -> PhaseProfile {
    let mut builder = PhaseBuilder::new(width);
    for fact in facts {
        match *fact {
            Fact::Call { from, to, at } => {
                builder.record_call(ContextId(from), ContextId(to), at);
            }
            Fact::Transfer {
                from,
                to,
                at,
                bytes,
            } => builder.record_transfer(ContextId(from), ContextId(to), at, bytes),
        }
    }
    builder.finish()
}

/// Flattens a finished profile back into the model shape.
fn flatten(profile: &PhaseProfile) -> Model {
    let mut model = Model::new();
    for pair in &profile.pairs {
        let cells: BTreeMap<u64, (u64, u64)> = pair
            .buckets
            .iter()
            .map(|b| (b.index, (b.calls, b.xfer_bytes)))
            .collect();
        model.insert((pair.from.0, pair.to.0), cells);
    }
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The builder agrees with the reference model for any fact
    /// sequence and bucket width — calls and bytes land in exactly
    /// the buckets integer division says they should.
    #[test]
    fn builder_matches_reference_model(
        facts in proptest::collection::vec(arb_fact(), 0..60),
        width in 1u64..40,
    ) {
        prop_assert_eq!(flatten(&build(&facts, width)), model_of(&facts, width));
    }

    /// The canonical shape invariants hold: pairs sorted by (from, to)
    /// with no duplicates, buckets sorted by index with no duplicates,
    /// no all-zero cells, no empty pairs, and `num_buckets` is one past
    /// the highest occupied index.
    #[test]
    fn finished_profiles_are_canonical(
        facts in proptest::collection::vec(arb_fact(), 0..60),
        width in 1u64..40,
    ) {
        let profile = build(&facts, width);
        prop_assert!(profile
            .pairs
            .windows(2)
            .all(|w| (w[0].from, w[0].to) < (w[1].from, w[1].to)));
        let mut max_index = None;
        for pair in &profile.pairs {
            prop_assert!(!pair.buckets.is_empty(), "empty pair survived finish");
            prop_assert!(pair.buckets.windows(2).all(|w| w[0].index < w[1].index));
            for bucket in &pair.buckets {
                prop_assert!(
                    bucket.calls != 0 || bucket.xfer_bytes != 0,
                    "all-zero cell survived finish"
                );
                max_index = max_index.max(Some(bucket.index));
            }
        }
        let expected = max_index.map_or(0, |i| i + 1);
        prop_assert_eq!(profile.num_buckets(), expected);
    }

    /// Boundary semantics: a timestamp exactly on a bucket boundary
    /// belongs to the *higher* bucket (floor division), the last tick
    /// of a bucket stays inside it, and splitting one fact stream into
    /// two merged halves changes nothing.
    #[test]
    fn boundaries_and_merge_respect_the_model(
        facts in proptest::collection::vec(arb_fact(), 1..40),
        width in 1u64..40,
        split in 0usize..40,
        k in 0u64..50,
    ) {
        // Direct boundary pins.
        let mut b = PhaseBuilder::new(width);
        b.record_transfer(ContextId(0), ContextId(1), k * width, 1);
        if width > 1 {
            b.record_transfer(ContextId(0), ContextId(1), k * width + width - 1, 1);
        }
        let profile = b.finish();
        prop_assert_eq!(profile.pairs.len(), 1);
        prop_assert_eq!(profile.pairs[0].buckets.len(), 1, "boundary + last tick share a bucket");
        prop_assert_eq!(profile.pairs[0].buckets[0].index, k);

        // Merge of a split stream == one-shot build.
        let split = split.min(facts.len());
        let mut left = build(&facts[..split], width);
        left.merge(&build(&facts[split..], width));
        prop_assert_eq!(flatten(&left), model_of(&facts, width));
    }
}
