//! Observability plumbing for the figure binaries.
//!
//! Each figure/table binary opens an [`session`] guard as the first line
//! of `main`; when the driver (`all_figures --metrics-dir <dir>`, or any
//! caller that sets [`METRICS_DIR_ENV`]) asked for metrics, the guard
//! enables [`sigil_obs`] for the process and drops a
//! `<dir>/<bin>.metrics.json` snapshot on exit. Without the variable the
//! guard is a no-op, so standalone figure runs stay uninstrumented.

use std::path::PathBuf;

/// Environment variable naming the directory where figure binaries write
/// their metrics snapshots (`<dir>/<bin>.metrics.json`).
pub const METRICS_DIR_ENV: &str = "SIGIL_METRICS_DIR";

/// Returns the metrics directory requested by the environment, if any.
pub fn metrics_dir() -> Option<PathBuf> {
    std::env::var_os(METRICS_DIR_ENV).map(PathBuf::from)
}

/// Enables observability when [`METRICS_DIR_ENV`] is set.
pub fn init_from_env() {
    if metrics_dir().is_some() {
        sigil_obs::set_enabled(true);
    }
}

/// Writes this binary's metrics snapshot to the directory named by
/// [`METRICS_DIR_ENV`] (creating it if needed). No-op when unset; write
/// failures are reported on stderr but never abort the figure run.
pub fn finish(bin_name: &str) {
    let Some(dir) = metrics_dir() else {
        return;
    };
    let path = dir.join(format!("{bin_name}.metrics.json"));
    let result = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::write(&path, sigil_obs::metrics::snapshot_json()));
    if let Err(e) = result {
        eprintln!(
            "warning: cannot write metrics snapshot `{}`: {e}",
            path.display()
        );
    }
}

/// RAII pairing of [`init_from_env`] and [`finish`] — open as the first
/// line of a figure binary's `main` and the snapshot is written however
/// `main` exits.
pub struct Session {
    bin: &'static str,
}

/// Starts a metrics session for the named figure binary.
pub fn session(bin: &'static str) -> Session {
    init_from_env();
    Session { bin }
}

impl Drop for Session {
    fn drop(&mut self) {
        finish(self.bin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_without_env_is_a_noop() {
        // When SIGIL_METRICS_DIR is unset (the normal test environment)
        // finish must not panic or write anything.
        if metrics_dir().is_none() {
            finish("test_fig_does_not_exist");
        }
    }

    #[test]
    fn session_guard_is_droppable() {
        let guard = session("test_fig_guard");
        drop(guard);
    }
}
