//! Shared harness for regenerating every table and figure of the paper's
//! evaluation (see `DESIGN.md`'s experiment index).
//!
//! Each `src/bin/figNN_*.rs` / `src/bin/tableN_*.rs` binary prints the
//! same rows/series the paper reports, as an aligned text table followed
//! by a CSV block (for plotting). `src/bin/all_figures.rs` runs the lot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub mod obs;

use sigil_callgrind::{CallgrindConfig, CallgrindProfiler};
use sigil_core::sweep::{sweep, SweepEntry};
use sigil_core::{Profile, SigilConfig, SigilProfiler};
use sigil_trace::observer::NullObserver;
use sigil_trace::Engine;
use sigil_workloads::{Benchmark, InputSize};

/// Collects a Sigil profile of `bench` at `size` under `config`.
pub fn profile(bench: Benchmark, size: InputSize, config: SigilConfig) -> Profile {
    let mut engine = Engine::new(SigilProfiler::new(config));
    bench.run(size, &mut engine);
    let (profiler, symbols) = engine.finish_with_symbols();
    profiler.into_profile(symbols)
}

/// Profiles every benchmark in `benches` at `size` under `config`, using
/// `jobs` worker threads (1 = serial). Entries come back in input order
/// with per-workload wall time filled in; each workload's profile is
/// identical to what a serial run produces because profilers share no
/// state.
pub fn sweep_suite(
    benches: &[Benchmark],
    size: InputSize,
    config: &SigilConfig,
    jobs: usize,
) -> Vec<SweepEntry> {
    let names: Vec<(String, String)> = benches
        .iter()
        .map(|b| (b.name().to_string(), size.to_string()))
        .collect();
    sweep(jobs, &names, |name| {
        let bench: Benchmark = name.parse().expect("sweep names come from Benchmark");
        profile(bench, size, *config)
    })
}

/// Times one closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed())
}

/// One row of the overhead comparison (Figures 4 and 5).
#[derive(Debug, Clone, Copy)]
pub struct OverheadRow {
    /// The benchmark measured.
    pub bench: Benchmark,
    /// Input size used.
    pub size: InputSize,
    /// Wall time of the uninstrumented (null-observer) run.
    pub native: Duration,
    /// Wall time under the Callgrind-like profiler.
    pub callgrind: Duration,
    /// Wall time under the full Sigil profiler.
    pub sigil: Duration,
}

impl OverheadRow {
    /// Sigil's slowdown relative to native.
    pub fn sigil_slowdown(&self) -> f64 {
        ratio(self.sigil, self.native)
    }

    /// Callgrind's slowdown relative to native.
    pub fn callgrind_slowdown(&self) -> f64 {
        ratio(self.callgrind, self.native)
    }

    /// Sigil's slowdown relative to Callgrind (Figure 5's metric).
    pub fn relative_slowdown(&self) -> f64 {
        ratio(self.sigil, self.callgrind)
    }
}

fn ratio(a: Duration, b: Duration) -> f64 {
    a.as_secs_f64() / b.as_secs_f64().max(1e-9)
}

/// Measures the three-way overhead of one benchmark. `reps` repetitions
/// of the *native* run are used (instrumented runs are long enough to
/// time once).
pub fn measure_overhead(bench: Benchmark, size: InputSize, reps: u32) -> OverheadRow {
    // Native: the workload generator running flat out into a no-op sink.
    let reps = reps.max(1);
    let (_, native_total) = time(|| {
        for _ in 0..reps {
            let mut engine = Engine::new(NullObserver);
            bench.run(size, &mut engine);
            let _ = engine.finish();
        }
    });
    let native = native_total / reps;

    let (_, callgrind) = time(|| {
        let mut engine = Engine::new(CallgrindProfiler::new(CallgrindConfig::default()));
        bench.run(size, &mut engine);
        let (profiler, symbols) = engine.finish_with_symbols();
        std::hint::black_box(profiler.into_profile(symbols));
    });

    let (_, sigil) = time(|| {
        let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
        bench.run(size, &mut engine);
        let (profiler, symbols) = engine.finish_with_symbols();
        std::hint::black_box(profiler.into_profile(symbols));
    });

    OverheadRow {
        bench,
        size,
        native,
        callgrind,
        sigil,
    }
}

/// Prints a figure header.
pub fn header(figure: &str, paper_says: &str) {
    println!("================================================================");
    println!("{figure}");
    println!("paper: {paper_says}");
    println!("================================================================");
}

/// Prints a CSV block delimiter plus its header row.
pub fn csv_header(columns: &str) {
    println!("--- csv ---");
    println!("{columns}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_helper_produces_nonempty_profile() {
        let p = profile(
            Benchmark::Blackscholes,
            InputSize::SimSmall,
            SigilConfig::default(),
        );
        assert!(p.callgrind.total_ops > 0);
        assert!(!p.edges.is_empty());
    }

    #[test]
    fn overhead_row_ratios() {
        let row = OverheadRow {
            bench: Benchmark::Vips,
            size: InputSize::SimSmall,
            native: Duration::from_millis(10),
            callgrind: Duration::from_millis(40),
            sigil: Duration::from_millis(200),
        };
        assert!((row.callgrind_slowdown() - 4.0).abs() < 1e-9);
        assert!((row.sigil_slowdown() - 20.0).abs() < 1e-9);
        assert!((row.relative_slowdown() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn measure_overhead_orders_sensibly() {
        let row = measure_overhead(Benchmark::Streamcluster, InputSize::SimSmall, 2);
        // Sigil must cost more than the null-observer run.
        assert!(row.sigil > row.native);
    }
}
