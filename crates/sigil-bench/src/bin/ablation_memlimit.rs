//! **Ablation (paper §III-A)**: accuracy vs shadow-memory budget on
//! dedup, the one benchmark that needed the FIFO limiter. The paper
//! reports "the corresponding loss of accuracy to be negligible"; this
//! sweep quantifies it: evicted shadow state re-reads as unique, so the
//! unique-byte count inflates as the budget shrinks.

use sigil_bench::{csv_header, header, profile};
use sigil_core::SigilConfig;
use sigil_mem::EvictionPolicy;
use sigil_workloads::{Benchmark, InputSize};

fn main() {
    let _obs = sigil_bench::obs::session("ablation_memlimit");
    header(
        "Ablation: shadow-memory limit vs classification accuracy (dedup, simsmall)",
        "the FIFO limiter's accuracy loss is negligible until the budget gets tiny",
    );
    let baseline = profile(
        Benchmark::Dedup,
        InputSize::SimSmall,
        SigilConfig::default(),
    );
    let true_unique = baseline.total_unique_bytes();
    println!(
        "unlimited: {} unique bytes, {:.2} MiB shadow",
        true_unique,
        baseline.memory.resident_mib()
    );
    println!(
        "\n{:>8} {:>8} {:>14} {:>10} {:>10} {:>10}",
        "chunks", "policy", "unique bytes", "error%", "MiB", "evictions"
    );
    let mut csv = Vec::new();
    for &limit in &[512usize, 128, 64, 32, 16, 8] {
        for policy in [EvictionPolicy::Fifo, EvictionPolicy::Lru] {
            let config = SigilConfig::default()
                .with_shadow_limit(limit)
                .with_eviction(policy);
            let p = profile(Benchmark::Dedup, InputSize::SimSmall, config);
            let unique = p.total_unique_bytes();
            let error = 100.0 * (unique as f64 - true_unique as f64) / true_unique as f64;
            println!(
                "{:>8} {:>8} {:>14} {:>9.2}% {:>10.2} {:>10}",
                limit,
                format!("{policy:?}"),
                unique,
                error,
                p.memory.resident_mib(),
                p.memory.evicted_chunks
            );
            csv.push((limit, policy, unique, error, p.memory.evicted_chunks));
        }
    }
    csv_header("chunk_limit,policy,unique_bytes,error_pct,evictions");
    for (limit, policy, unique, error, evictions) in csv {
        println!("{limit},{policy:?},{unique},{error:.4},{evictions}");
    }
}
