//! **Figure 12**: breakdown of memory lines by reuse count
//! (`<10`, `<100`, `<1000`, `<10000`, `>10000`), 64-byte lines.
//!
//! Paper: "While almost all benchmarks have lines re-used more than
//! 10,000 times, Dedup, Bodytrack and Streamcluster have a significant
//! number of lines that are re-used fewer times."

use sigil_analysis::reuse_analysis::line_breakdown_percent;
use sigil_bench::{csv_header, header, profile};
use sigil_core::{LineReport, SigilConfig};
use sigil_workloads::{Benchmark, InputSize};

fn main() {
    let _obs = sigil_bench::obs::session("fig12_reuse_lines");
    header(
        "Figure 12: memory lines by reuse count (simsmall, 64-byte lines)",
        "streaming benchmarks (dedup/bodytrack/streamcluster) have many low-reuse lines",
    );
    println!(
        "{:>14} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "benchmark",
        LineReport::LABELS[0],
        LineReport::LABELS[1],
        LineReport::LABELS[2],
        LineReport::LABELS[3],
        LineReport::LABELS[4]
    );
    let mut csv = Vec::new();
    for bench in Benchmark::parsec() {
        let p = profile(
            bench,
            InputSize::SimSmall,
            SigilConfig::default().with_line_mode(64),
        );
        let pct = line_breakdown_percent(&p).expect("line mode enabled");
        println!(
            "{:>14} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            bench.name(),
            pct[0],
            pct[1],
            pct[2],
            pct[3],
            pct[4]
        );
        csv.push((bench, pct));
    }
    csv_header("benchmark,lt10,lt100,lt1000,lt10000,ge10000");
    for (bench, pct) in csv {
        println!(
            "{},{:.3},{:.3},{:.3},{:.3},{:.3}",
            bench.name(),
            pct[0],
            pct[1],
            pct[2],
            pct[3],
            pct[4]
        );
    }
}
