//! **Figure 7**: normalized execution-time coverage of the leaf nodes of
//! the trimmed calltree, per benchmark.
//!
//! Paper: "many applications spend over 50% of their execution in the
//! leaf nodes of the trimmed call tree. The exceptions are Canneal,
//! Ferret and Swaptions, whose candidate functions show low coverage."

use sigil_analysis::partition::{trim_calltree, PartitionConfig};
use sigil_bench::{csv_header, header, profile};
use sigil_core::SigilConfig;
use sigil_workloads::{Benchmark, InputSize};

fn main() {
    let _obs = sigil_bench::obs::session("fig07_coverage");
    header(
        "Figure 7: coverage of trimmed-calltree leaf nodes (simsmall)",
        "most benchmarks >50%; canneal/ferret/swaptions low",
    );
    println!("{:>14} {:>10} {:>8}", "benchmark", "coverage", "leaves");
    let config = PartitionConfig::default();
    let mut csv = Vec::new();
    for bench in Benchmark::parsec() {
        let p = profile(bench, InputSize::SimSmall, SigilConfig::default());
        let trimmed = trim_calltree(&p, &config);
        println!(
            "{:>14} {:>9.1}% {:>8}",
            bench.name(),
            trimmed.coverage * 100.0,
            trimmed.leaves.len()
        );
        csv.push((bench, trimmed.coverage, trimmed.leaves.len()));
    }
    csv_header("benchmark,coverage,leaf_count");
    for (bench, cov, n) in csv {
        println!("{},{cov:.4},{n}", bench.name());
    }
}
