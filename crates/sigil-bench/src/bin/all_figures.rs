//! Runs every figure/table binary's logic in sequence by spawning the
//! sibling binaries. Convenience wrapper for regenerating the whole
//! evaluation (`cargo run --release -p sigil-bench --bin all_figures`).

use std::process::{Command, ExitCode};

const TARGETS: [&str; 17] = [
    "fig04_slowdown",
    "fig05_relative_slowdown",
    "fig06_memory",
    "fig07_coverage",
    "table2_breakeven_top",
    "table3_breakeven_bottom",
    "fig08_reuse_bytes",
    "fig09_vips_lifetimes",
    "fig10_conv_gen_hist",
    "fig11_xyz2lab_hist",
    "fig12_reuse_lines",
    "fig13_parallelism",
    "ablation_memlimit",
    "ext_comm_critpath",
    "ext_bb_curve",
    "ext_schedule",
    "ext_reuse_distance",
];

fn main() -> ExitCode {
    let current = std::env::current_exe().expect("current exe path");
    let bindir = current.parent().expect("exe has a parent dir");
    for target in TARGETS {
        let path = bindir.join(target);
        if !path.exists() {
            eprintln!(
                "error: `{target}` not built; run `cargo build --release -p sigil-bench --bins` first"
            );
            return ExitCode::FAILURE;
        }
        let status = Command::new(&path).status().expect("spawn figure binary");
        if !status.success() {
            eprintln!("error: `{target}` failed with {status}");
            return ExitCode::FAILURE;
        }
        println!();
    }
    ExitCode::SUCCESS
}
