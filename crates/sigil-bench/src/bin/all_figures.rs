//! Runs every figure/table binary's logic by spawning the sibling
//! binaries. Convenience wrapper for regenerating the whole evaluation
//! (`cargo run --release -p sigil-bench --bin all_figures [-- --jobs N]`).
//!
//! With `--jobs N` (default 1) up to N figure binaries run concurrently —
//! each is an independent process, so this is the same embarrassingly
//! parallel shape as `sigil sweep --jobs`. Output is captured per binary
//! and printed in the fixed figure order regardless of completion order.
//!
//! With `--metrics-dir <dir>` every child binary writes a
//! `<dir>/<bin>.metrics.json` snapshot (via the `SIGIL_METRICS_DIR`
//! environment variable) and the driver writes its own
//! `<dir>/all_figures.metrics.json` with per-figure counters.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

use sigil_core::sweep::run_parallel;

const TARGETS: [&str; 17] = [
    "fig04_slowdown",
    "fig05_relative_slowdown",
    "fig06_memory",
    "fig07_coverage",
    "table2_breakeven_top",
    "table3_breakeven_bottom",
    "fig08_reuse_bytes",
    "fig09_vips_lifetimes",
    "fig10_conv_gen_hist",
    "fig11_xyz2lab_hist",
    "fig12_reuse_lines",
    "fig13_parallelism",
    "ablation_memlimit",
    "ext_comm_critpath",
    "ext_bb_curve",
    "ext_schedule",
    "ext_reuse_distance",
];

struct FigureRun {
    target: &'static str,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    success: bool,
    wall_ms: f64,
}

struct DriverOptions {
    jobs: usize,
    metrics_dir: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<DriverOptions, String> {
    let mut opts = DriverOptions {
        jobs: 1,
        metrics_dir: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => {
                let value = it.next().ok_or("--jobs needs a value")?;
                opts.jobs = value.parse().map_err(|_| "bad --jobs value".to_owned())?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
            }
            "--metrics-dir" => {
                let value = it.next().ok_or("--metrics-dir needs a directory")?;
                opts.metrics_dir = Some(PathBuf::from(value));
            }
            other => {
                return Err(format!(
                    "unknown option `{other}` (only --jobs <n> --metrics-dir <dir>)"
                ))
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let jobs = opts.jobs;
    if let Some(dir) = &opts.metrics_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create `{}`: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        sigil_obs::set_enabled(true);
    }
    let current = std::env::current_exe().expect("current exe path");
    let bindir = current
        .parent()
        .expect("exe has a parent dir")
        .to_path_buf();
    for target in TARGETS {
        if !bindir.join(target).exists() {
            eprintln!(
                "error: `{target}` not built; run `cargo build --release -p sigil-bench --bins` first"
            );
            return ExitCode::FAILURE;
        }
    }

    let ok_counter = sigil_obs::metrics::counter("figures.succeeded");
    let fail_counter = sigil_obs::metrics::counter("figures.failed");
    let wall_hist =
        sigil_obs::metrics::histogram("figures.wall_ms", &[100, 500, 1000, 5000, 30_000, 120_000]);
    let runs = run_parallel(jobs, TARGETS.to_vec(), |target| {
        let _span = sigil_obs::span_with(|| format!("figure:{target}"));
        let path: PathBuf = bindir.join(target);
        let start = std::time::Instant::now();
        let mut command = Command::new(&path);
        if let Some(dir) = &opts.metrics_dir {
            command.env(sigil_bench::obs::METRICS_DIR_ENV, dir);
        }
        let output = command.output().expect("spawn figure binary");
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if output.status.success() {
            ok_counter.inc();
        } else {
            fail_counter.inc();
        }
        wall_hist.observe(wall_ms.round() as u64);
        FigureRun {
            target,
            stdout: output.stdout,
            stderr: output.stderr,
            success: output.status.success(),
            wall_ms,
        }
    });

    let mut failed = false;
    for run in &runs {
        print!("{}", String::from_utf8_lossy(&run.stdout));
        eprint!("{}", String::from_utf8_lossy(&run.stderr));
        if !run.success {
            eprintln!("error: `{}` failed", run.target);
            failed = true;
        }
        println!();
    }
    println!("--- per-figure wall time (ms), jobs={jobs} ---");
    for run in &runs {
        println!("{:>10.1}  {}", run.wall_ms, run.target);
    }
    if let Some(dir) = &opts.metrics_dir {
        let path = dir.join("all_figures.metrics.json");
        if let Err(e) = std::fs::write(&path, sigil_obs::metrics::snapshot_json()) {
            eprintln!("error: cannot write `{}`: {e}", path.display());
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
