//! Runs every figure/table binary's logic by spawning the sibling
//! binaries. Convenience wrapper for regenerating the whole evaluation
//! (`cargo run --release -p sigil-bench --bin all_figures [-- --jobs N]`).
//!
//! With `--jobs N` (default 1) up to N figure binaries run concurrently —
//! each is an independent process, so this is the same embarrassingly
//! parallel shape as `sigil sweep --jobs`. Output is captured per binary
//! and printed in the fixed figure order regardless of completion order.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

use sigil_core::sweep::run_parallel;

const TARGETS: [&str; 17] = [
    "fig04_slowdown",
    "fig05_relative_slowdown",
    "fig06_memory",
    "fig07_coverage",
    "table2_breakeven_top",
    "table3_breakeven_bottom",
    "fig08_reuse_bytes",
    "fig09_vips_lifetimes",
    "fig10_conv_gen_hist",
    "fig11_xyz2lab_hist",
    "fig12_reuse_lines",
    "fig13_parallelism",
    "ablation_memlimit",
    "ext_comm_critpath",
    "ext_bb_curve",
    "ext_schedule",
    "ext_reuse_distance",
];

struct FigureRun {
    target: &'static str,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    success: bool,
    wall_ms: f64,
}

fn parse_jobs(args: &[String]) -> Result<usize, String> {
    let mut jobs = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" => {
                let value = it.next().ok_or("--jobs needs a value")?;
                jobs = value.parse().map_err(|_| "bad --jobs value".to_owned())?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
            }
            other => return Err(format!("unknown option `{other}` (only --jobs <n>)")),
        }
    }
    Ok(jobs)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = match parse_jobs(&args) {
        Ok(jobs) => jobs,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let current = std::env::current_exe().expect("current exe path");
    let bindir = current
        .parent()
        .expect("exe has a parent dir")
        .to_path_buf();
    for target in TARGETS {
        if !bindir.join(target).exists() {
            eprintln!(
                "error: `{target}` not built; run `cargo build --release -p sigil-bench --bins` first"
            );
            return ExitCode::FAILURE;
        }
    }

    let runs = run_parallel(jobs, TARGETS.to_vec(), |target| {
        let path: PathBuf = bindir.join(target);
        let start = std::time::Instant::now();
        let output = Command::new(&path).output().expect("spawn figure binary");
        FigureRun {
            target,
            stdout: output.stdout,
            stderr: output.stderr,
            success: output.status.success(),
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        }
    });

    let mut failed = false;
    for run in &runs {
        print!("{}", String::from_utf8_lossy(&run.stdout));
        eprint!("{}", String::from_utf8_lossy(&run.stderr));
        if !run.success {
            eprintln!("error: `{}` failed", run.target);
            failed = true;
        }
        println!();
    }
    println!("--- per-figure wall time (ms), jobs={jobs} ---");
    for run in &runs {
        println!("{:>10.1}  {}", run.wall_ms, run.target);
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
