//! **Extension (paper §IV-C future work)**: critical paths with
//! communication edges charged — "we do not employ more sophisticated
//! critical path analysis … which also take communication edges into
//! account". This binary compares the paper's free-transfer parallelism
//! limit against a bus-charged one.

use sigil_analysis::critical_path::{CommModel, CriticalPath};
use sigil_bench::{csv_header, header, profile};
use sigil_core::SigilConfig;
use sigil_workloads::{Benchmark, InputSize};

fn main() {
    let _obs = sigil_bench::obs::session("ext_comm_critpath");
    header(
        "Extension: communication-aware critical paths",
        "charging transfers (100-op setup, 8 B/op) shrinks the extractable parallelism",
    );
    let bus = CommModel {
        fixed_ops: 100,
        bytes_per_op: 8.0,
    };
    println!(
        "{:>14} {:>12} {:>14} {:>10}",
        "benchmark", "free", "bus-charged", "shrink"
    );
    let mut csv = Vec::new();
    for bench in Benchmark::ALL {
        let p = profile(
            bench,
            InputSize::SimSmall,
            SigilConfig::default().with_events(),
        );
        let free = CriticalPath::from_profile(&p).expect("events enabled");
        let charged = CriticalPath::from_profile_with(&p, &bus).expect("events enabled");
        let shrink = free.max_parallelism() / charged.max_parallelism().max(1e-9);
        println!(
            "{:>14} {:>11.2}x {:>13.2}x {:>9.2}x",
            bench.name(),
            free.max_parallelism(),
            charged.max_parallelism(),
            shrink
        );
        csv.push((bench, free.max_parallelism(), charged.max_parallelism()));
    }
    csv_header("benchmark,free_parallelism,charged_parallelism");
    for (bench, free, charged) in csv {
        println!("{},{free:.4},{charged:.4}", bench.name());
    }
}
