//! **Figure 4**: slowdown of Sigil and Callgrind relative to native runs
//! for baseline function-level profiling (simsmall inputs).
//!
//! Paper: Sigil's slowdown is "much larger compared to Callgrind; the
//! average slowdown being 580x for simsmall inputs" on real Valgrind DBI.
//! Our substrate pays no binary-translation cost, so absolute ratios are
//! smaller, but the ordering Sigil ≫ Callgrind ≫ native must hold.

use sigil_bench::{csv_header, header, measure_overhead};
use sigil_workloads::{Benchmark, InputSize};

fn main() {
    let _obs = sigil_bench::obs::session("fig04_slowdown");
    header(
        "Figure 4: slowdown of Sigil and Callgrind relative to native (simsmall)",
        "Sigil >> Callgrind >> 1; Sigil average 580x on Valgrind-based DBI",
    );
    println!(
        "{:>14} {:>12} {:>16} {:>14}",
        "benchmark", "sigil x", "callgrind x", "sigil/callgrind"
    );
    let mut rows = Vec::new();
    for bench in Benchmark::parsec() {
        let row = measure_overhead(bench, InputSize::SimSmall, 3);
        println!(
            "{:>14} {:>12.1} {:>16.1} {:>14.1}",
            bench.name(),
            row.sigil_slowdown(),
            row.callgrind_slowdown(),
            row.relative_slowdown()
        );
        rows.push(row);
    }
    let geo = |f: &dyn Fn(&sigil_bench::OverheadRow) -> f64| -> f64 {
        let product: f64 = rows.iter().map(|r| f(r).ln()).sum();
        (product / rows.len() as f64).exp()
    };
    println!(
        "{:>14} {:>12.1} {:>16.1} {:>14.1}",
        "geomean",
        geo(&|r| r.sigil_slowdown()),
        geo(&|r| r.callgrind_slowdown()),
        geo(&|r| r.relative_slowdown())
    );
    csv_header("benchmark,sigil_slowdown,callgrind_slowdown");
    for row in &rows {
        println!(
            "{},{:.3},{:.3}",
            row.bench.name(),
            row.sigil_slowdown(),
            row.callgrind_slowdown()
        );
    }
}
