//! **Figure 8**: breakdown of data bytes by reuse count (0 / 1-9 / >9)
//! for the PARSEC benchmarks (simsmall).
//!
//! Paper: "for most benchmarks a very small percentage of data elements
//! are used more than 9 times. … a significant percentage of data is
//! created and consumed without ever being read again" — blackscholes
//! and streamcluster in particular show very limited reuse.

use sigil_analysis::reuse_analysis::reuse_breakdown_percent;
use sigil_bench::{csv_header, header, profile};
use sigil_core::SigilConfig;
use sigil_workloads::{Benchmark, InputSize};

fn main() {
    let _obs = sigil_bench::obs::session("fig08_reuse_bytes");
    header(
        "Figure 8: data bytes by reuse count (simsmall, reuse mode)",
        "zero-reuse dominates; >9 reuse is a small sliver for most benchmarks",
    );
    println!("{:>14} {:>10} {:>10} {:>10}", "benchmark", "0", "1-9", ">9");
    let mut csv = Vec::new();
    for bench in Benchmark::parsec() {
        let p = profile(
            bench,
            InputSize::SimSmall,
            SigilConfig::default().with_reuse_mode(),
        );
        let pct = reuse_breakdown_percent(&p).expect("reuse mode enabled");
        println!(
            "{:>14} {:>9.1}% {:>9.1}% {:>9.1}%",
            bench.name(),
            pct[0],
            pct[1],
            pct[2]
        );
        csv.push((bench, pct));
    }
    csv_header("benchmark,zero_pct,low_pct,high_pct");
    for (bench, pct) in csv {
        println!("{},{:.3},{:.3},{:.3}", bench.name(), pct[0], pct[1], pct[2]);
    }
}
