//! **Figure 6**: memory usage for baseline function-level profiling,
//! simsmall vs simmedium inputs.
//!
//! Paper: "The memory increase … remains consistent for increased
//! datasize. facesim and raytrace are intensive benchmarks that use
//! larger amounts of memory."

use sigil_bench::{csv_header, header, profile};
use sigil_core::SigilConfig;
use sigil_workloads::{Benchmark, InputSize};

fn main() {
    let _obs = sigil_bench::obs::session("fig06_memory");
    header(
        "Figure 6: shadow-memory usage for baseline profiling",
        "usage grows with data size; facesim/raytrace/dedup are the memory-intensive ones",
    );
    println!(
        "{:>14} {:>16} {:>16}",
        "benchmark", "simsmall (MiB)", "simmedium (MiB)"
    );
    let mut csv = Vec::new();
    for bench in Benchmark::parsec() {
        let small = profile(bench, InputSize::SimSmall, SigilConfig::default());
        let medium = profile(bench, InputSize::SimMedium, SigilConfig::default());
        println!(
            "{:>14} {:>16.2} {:>16.2}",
            bench.name(),
            small.memory.resident_mib(),
            medium.memory.resident_mib()
        );
        csv.push((
            bench,
            small.memory.resident_mib(),
            medium.memory.resident_mib(),
        ));
    }
    csv_header("benchmark,simsmall_mib,simmedium_mib");
    for (bench, s, m) in csv {
        println!("{},{s:.4},{m:.4}", bench.name());
    }
}
