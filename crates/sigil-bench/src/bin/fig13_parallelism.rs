//! **Figure 13**: maximum theoretical function-level parallelism
//! (serial length / critical-path length) for PARSEC benchmarks and
//! SPEC's libquantum.
//!
//! Paper: streamcluster and libquantum sit at the high end (many short
//! independent paths); fluidanimate is near 1 because `ComputeForces`
//! forms one long serial chain contributing ~90% of the ops. The
//! streamcluster critical path runs
//! `drand48_iterate → nrand48_r → lrand48 → pkmedian → localSearch →
//! streamCluster → main`.

use sigil_analysis::critical_path::CriticalPath;
use sigil_bench::{csv_header, header, profile};
use sigil_core::SigilConfig;
use sigil_workloads::{Benchmark, InputSize};

fn main() {
    let _obs = sigil_bench::obs::session("fig13_parallelism");
    header(
        "Figure 13: maximum function-level parallelism (simsmall)",
        "streamcluster & libquantum high; fluidanimate ~1 (ComputeForces chain)",
    );
    println!(
        "{:>14} {:>14} {:>14} {:>12}",
        "benchmark", "serial ops", "critical path", "parallelism"
    );
    let mut csv = Vec::new();
    for bench in Benchmark::ALL {
        let p = profile(
            bench,
            InputSize::SimSmall,
            SigilConfig::default().with_events(),
        );
        let cp = CriticalPath::from_profile(&p).expect("events enabled");
        println!(
            "{:>14} {:>14} {:>14} {:>11.2}x",
            bench.name(),
            cp.serial_ops,
            cp.length_ops,
            cp.max_parallelism()
        );
        if bench == Benchmark::Streamcluster || bench == Benchmark::Fluidanimate {
            println!("    path: {}", cp.function_names(&p).join(" -> "));
        }
        csv.push((bench, cp.serial_ops, cp.length_ops, cp.max_parallelism()));
    }
    csv_header("benchmark,serial_ops,critical_path_ops,max_parallelism");
    for (bench, serial, path, speedup) in csv {
        println!("{},{serial},{path},{speedup:.4}", bench.name());
    }
}
