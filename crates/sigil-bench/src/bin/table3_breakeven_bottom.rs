//! **Table III**: breakeven speedup for the worst 5 functions of
//! blackscholes, bodytrack, canneal and dedup (simsmall).
//!
//! Paper: "the functions are mostly utility functions such as
//! constructors (e.g. std::vector), destructors (e.g. free) and
//! initializers (e.g. std::string::assign). These same functions also
//! exhibit less computational intensity" — breakeven 1.1 to 7.5.

use sigil_analysis::partition::{rank_functions, PartitionConfig};
use sigil_bench::{csv_header, header, profile};
use sigil_core::SigilConfig;
use sigil_workloads::{Benchmark, InputSize};

const TABLE_BENCHES: [Benchmark; 4] = [
    Benchmark::Blackscholes,
    Benchmark::Bodytrack,
    Benchmark::Canneal,
    Benchmark::Dedup,
];

fn main() {
    let _obs = sigil_bench::obs::session("table3_breakeven_bottom");
    header(
        "Table III: breakeven speedup, worst 5 functions per benchmark (simsmall)",
        "worst candidates are utility functions (ctors/dtors/initializers), S(be) 1.1-7.5",
    );
    let config = PartitionConfig::default();
    let mut csv = Vec::new();
    for bench in TABLE_BENCHES {
        let p = profile(bench, InputSize::SimSmall, SigilConfig::default());
        let ranked = rank_functions(&p, &config);
        println!("\n{}:", bench.name());
        println!("{:>10}  function", "S(be)");
        for row in ranked
            .iter()
            .rev()
            .take(5)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
        {
            println!("{:>10.3}  {}", row.breakeven, row.name);
            csv.push((bench, row.name.clone(), row.breakeven));
        }
    }
    csv_header("benchmark,function,breakeven");
    for (bench, name, s) in csv {
        println!("{},{name},{s:.4}", bench.name());
    }
}
