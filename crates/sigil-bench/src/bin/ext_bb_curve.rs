//! **Extension (paper §IV-B2)**: buffer/bandwidth (BB-curve-style)
//! trade-off for the vips deep-dive functions — how much accelerator
//! buffer retention is needed to absorb each function's data reuse
//! locally instead of re-fetching over the external interface.

use sigil_analysis::buffer::{bb_curve, retention_for_hit_fraction};
use sigil_bench::{csv_header, header, profile};
use sigil_core::SigilConfig;
use sigil_workloads::{Benchmark, InputSize};

fn main() {
    let _obs = sigil_bench::obs::session("ext_bb_curve");
    header(
        "Extension: buffer-retention vs external-refetch curve (vips)",
        "§IV-B2: reuse data determines accelerator buffer sizes (Cong et al. BB-curves)",
    );
    let p = profile(
        Benchmark::Vips,
        InputSize::SimSmall,
        SigilConfig::default().with_reuse_mode(),
    );
    for function in ["conv_gen", "imb_XYZ2Lab", "affine_gen"] {
        let Some(curve) = bb_curve(&p, function) else {
            println!("{function}: no reuse records");
            continue;
        };
        println!("\n{function}:");
        println!(
            "{:>16} {:>12} {:>12} {:>8}",
            "retention (ops)", "buffered B", "refetch B", "hit%"
        );
        for point in &curve {
            println!(
                "{:>16} {:>12} {:>12} {:>7.1}%",
                point.retention_ops,
                point.buffered_bytes,
                point.refetched_bytes,
                100.0 * point.hit_fraction()
            );
        }
        for target in [0.5, 0.9, 1.0] {
            if let Some(window) = retention_for_hit_fraction(&p, function, target) {
                println!(
                    "  -> {:.0}% local hits need a {window}-op retention window",
                    target * 100.0
                );
            }
        }
    }
    csv_header("function,retention_ops,buffered_bytes,refetched_bytes");
    for function in ["conv_gen", "imb_XYZ2Lab", "affine_gen"] {
        if let Some(curve) = bb_curve(&p, function) {
            for point in curve {
                println!(
                    "{function},{},{},{}",
                    point.retention_ops, point.buffered_bytes, point.refetched_bytes
                );
            }
        }
    }
}
