//! **Figure 9**: average reuse lifetimes of the top `vips` functions by
//! number of reused data bytes.
//!
//! Paper: "'conv_gen(1)' … has the highest and 'imb_XYZ2Lab' has the
//! smallest average re-use lifetime. These two functions and the
//! 'affine_gen' functions are the three biggest contributors to the
//! total unique data bytes processed by the benchmark."

use sigil_analysis::reuse_analysis::function_reuse_rows;
use sigil_bench::{csv_header, header, profile};
use sigil_core::SigilConfig;
use sigil_workloads::{Benchmark, InputSize};

fn main() {
    let _obs = sigil_bench::obs::session("fig09_vips_lifetimes");
    header(
        "Figure 9: average reuse lifetime of top vips functions (simsmall)",
        "conv_gen(1) highest, imb_XYZ2Lab lowest average lifetime",
    );
    let p = profile(
        Benchmark::Vips,
        InputSize::SimSmall,
        SigilConfig::default().with_reuse_mode(),
    );
    let rows = function_reuse_rows(&p).expect("reuse mode enabled");
    println!(
        "{:>12} {:>12} {:>16}  function",
        "reused B", "total B", "avg lifetime"
    );
    for row in rows.iter().take(10) {
        println!(
            "{:>12} {:>12} {:>16.0}  {}",
            row.reused_bytes, row.total_bytes, row.avg_lifetime, row.label
        );
    }
    // Unique-byte contribution of the headline functions.
    let total_unique = p.total_unique_bytes().max(1);
    println!("\nunique-byte contribution (share of program total):");
    for name in ["conv_gen", "imb_XYZ2Lab", "affine_gen"] {
        let unique: u64 = p
            .function_by_name(name)
            .map_or(0, |f| f.comm.unique_bytes_consumed());
        println!(
            "  {name:<16} {:>6.1}%",
            100.0 * unique as f64 / total_unique as f64
        );
    }
    csv_header("function,reused_bytes,total_bytes,avg_lifetime");
    for row in rows.iter().take(10) {
        println!(
            "{},{},{},{:.1}",
            row.label, row.reused_bytes, row.total_bytes, row.avg_lifetime
        );
    }
}
