//! **Figure 5**: slowdown of Sigil *relative to Callgrind* for baseline
//! function-level profiling, simsmall and simmedium inputs.
//!
//! Paper: "an average slowdown of 8-9x and remains fairly consistent …
//! dedup is an outlier which incurred more slowdown as we enabled the
//! memory limiting command line option."

use sigil_bench::{csv_header, header, measure_overhead};
use sigil_workloads::{Benchmark, InputSize};

fn main() {
    let _obs = sigil_bench::obs::session("fig05_relative_slowdown");
    header(
        "Figure 5: slowdown of Sigil relative to Callgrind",
        "fairly consistent ~8-9x across benchmarks and input sizes; dedup an outlier",
    );
    println!("{:>14} {:>14} {:>14}", "benchmark", "simsmall", "simmedium");
    let mut csv = Vec::new();
    for bench in Benchmark::parsec() {
        let small = measure_overhead(bench, InputSize::SimSmall, 2);
        let medium = measure_overhead(bench, InputSize::SimMedium, 1);
        println!(
            "{:>14} {:>13.1}x {:>13.1}x",
            bench.name(),
            small.relative_slowdown(),
            medium.relative_slowdown()
        );
        csv.push((bench, small.relative_slowdown(), medium.relative_slowdown()));
    }
    csv_header("benchmark,simsmall_rel,simmedium_rel");
    for (bench, s, m) in csv {
        println!("{},{s:.3},{m:.3}", bench.name());
    }
}
