//! **Figure 10**: reuse-lifetime histogram of `conv_gen` in vips
//! (bin size 1000 retired ops, log-scale counts in the paper).
//!
//! Paper: "the distribution has a long tail and a central peak …
//! plenty of data elements that have large re-use lifetimes and hence
//! bad temporal locality."

use sigil_analysis::reuse_analysis::lifetime_histogram_of;
use sigil_bench::{csv_header, header, profile};
use sigil_core::SigilConfig;
use sigil_workloads::{Benchmark, InputSize};

fn main() {
    let _obs = sigil_bench::obs::session("fig10_conv_gen_hist");
    header(
        "Figure 10: reuse-lifetime distribution of conv_gen in vips",
        "central peak + long tail (bad temporal locality)",
    );
    let p = profile(
        Benchmark::Vips,
        InputSize::SimSmall,
        SigilConfig::default().with_reuse_mode(),
    );
    let hist = lifetime_histogram_of(&p, "conv_gen").expect("conv_gen reuses data");
    println!("{:>14} {:>12}  bar", "lifetime bin", "bytes");
    let max = hist.iter().map(|(_, c)| c).max().unwrap_or(1);
    for (bin, count) in hist.iter() {
        let bar = "#".repeat(((count * 50) / max) as usize);
        println!("{bin:>14} {count:>12}  {bar}");
    }
    println!(
        "\ntail length: {} ops; non-empty bins: {}; total reused bytes: {}",
        hist.max_lifetime_bin().unwrap_or(0),
        hist.nonempty_bins(),
        hist.total()
    );
    csv_header("lifetime_bin,count");
    for (bin, count) in hist.iter() {
        println!("{bin},{count}");
    }
}
