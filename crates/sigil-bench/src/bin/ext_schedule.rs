//! **Extension (paper §IV-C)**: mapping dependency chains onto a fixed
//! number of cores — "A software developer may have a fixed number of
//! scheduling slots based on the number of available cores. The
//! developer can map dependency chains onto these slots."
//!
//! For each benchmark, list-schedule the fragment dependency graph onto
//! 1/2/4/8/16 cores and report the realizable speedup next to the
//! Figure 13 theoretical limit.

use sigil_analysis::critical_path::CriticalPath;
use sigil_analysis::schedule::scaling_curve;
use sigil_bench::{csv_header, header, profile};
use sigil_core::SigilConfig;
use sigil_workloads::{Benchmark, InputSize};

const CORES: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    let _obs = sigil_bench::obs::session("ext_schedule");
    header(
        "Extension: dependency chains scheduled onto fixed core counts",
        "realizable speedups saturate at the Figure 13 theoretical limit",
    );
    println!(
        "{:>14} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9}",
        "benchmark", "1c", "2c", "4c", "8c", "16c", "limit"
    );
    let mut csv = Vec::new();
    for bench in Benchmark::ALL {
        let p = profile(
            bench,
            InputSize::SimSmall,
            SigilConfig::default().with_events(),
        );
        let curve = scaling_curve(&p, &CORES).expect("events enabled");
        let limit = CriticalPath::from_profile(&p)
            .expect("events enabled")
            .max_parallelism();
        print!("{:>14}", bench.name());
        for &(_, speedup) in &curve {
            print!(" {speedup:>6.2}x");
        }
        println!(" {limit:>8.2}x");
        csv.push((bench, curve, limit));
    }
    csv_header("benchmark,cores,speedup,limit");
    for (bench, curve, limit) in csv {
        for (cores, speedup) in curve {
            println!("{},{cores},{speedup:.4},{limit:.4}", bench.name());
        }
    }
}
