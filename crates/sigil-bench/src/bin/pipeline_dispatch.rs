//! Dispatch-thread cost: pipelined epoch dispatch vs. the legacy path.
//!
//! Replays the dense producer→consumer trace (the `shadow_pipeline`
//! criterion shape) through the sharded engine at 2/4/8 shards, once
//! with the default pipelined dispatch (oracle elided on the unbounded
//! config, same-shard runs coalesced) and once with the legacy path
//! pinned (`with_forced_dispatch_oracle().without_dispatch_coalescing()`).
//! The `dispatch.*` counters exported through `sigil-obs` give the
//! dispatch thread's busy time directly, so the comparison is the
//! per-access dispatch cost itself — meaningful even on one core, where
//! wall-clock sharding numbers price pure overhead.
//!
//! ```text
//! cargo run --release -p sigil-bench --bin pipeline_dispatch
//! ```
//!
//! Results land in `BENCH_shadow_pipeline.json`.

use sigil_core::{SigilConfig, SigilProfiler};
use sigil_obs::metrics::{self, MetricValue};
use sigil_trace::observer::RecordingObserver;
use sigil_trace::{io::replay, Engine, OpClass, RuntimeEvent, SymbolTable};

/// Records a dense trace: eight producer→consumer rounds sweeping
/// 64-byte runs across a 64-chunk working set (~33k accesses), the
/// access shape where shadow lookups dominate profiling cost.
fn record_dense() -> (SymbolTable, Vec<RuntimeEvent>) {
    const SPAN: u64 = 64 * 4096;
    let mut engine = Engine::new(RecordingObserver::new());
    engine.scoped_named("main", |e| {
        for _ in 0..8 {
            e.scoped_named("producer", |e| {
                e.op(OpClass::IntArith, 16);
                for i in 0..2048u64 {
                    e.write((i * 64) % SPAN, 64);
                }
            });
            e.scoped_named("consumer", |e| {
                for i in 0..2048u64 {
                    e.read((i * 64) % SPAN, 64);
                }
                e.op(OpClass::FloatArith, 16);
            });
        }
    });
    let (observer, symbols) = engine.finish_with_symbols();
    (symbols, observer.into_events())
}

/// One arm's dispatch counters, normalized per access.
#[derive(Debug, Clone, Copy)]
struct DispatchCost {
    busy_ns_per_access: f64,
    resolve_ns_per_access: f64,
    records_per_access: f64,
    accesses: u64,
}

fn counter(snap: &std::collections::BTreeMap<String, MetricValue>, name: &str) -> u64 {
    match snap.get(name) {
        Some(MetricValue::Counter(v)) => *v,
        other => panic!("`{name}` should be a counter, got {other:?}"),
    }
}

/// Replays the trace under `config` with obs on and returns the
/// dispatch-thread counters. `reps` full replays are averaged so the
/// per-access nanosecond figures are stable on a noisy container.
fn measure(
    symbols: &SymbolTable,
    events: &[RuntimeEvent],
    config: SigilConfig,
    reps: u32,
) -> DispatchCost {
    metrics::clear();
    for _ in 0..reps {
        let mut profiler = SigilProfiler::new(config);
        replay(events, &mut profiler);
        std::hint::black_box(profiler.into_profile(symbols.clone()));
    }
    let snap = metrics::snapshot();
    let accesses = counter(&snap, "dispatch.accesses");
    let records = counter(&snap, "dispatch.records");
    let cost = DispatchCost {
        busy_ns_per_access: counter(&snap, "dispatch.busy_ns") as f64 / accesses as f64,
        resolve_ns_per_access: counter(&snap, "dispatch.resolve_ns") as f64 / accesses as f64,
        records_per_access: records as f64 / accesses as f64,
        accesses: accesses / u64::from(reps),
    };
    metrics::clear();
    cost
}

fn main() {
    let reps: u32 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("rep count"))
        .unwrap_or(20);
    let (symbols, events) = record_dense();
    sigil_obs::set_enabled(true);

    println!("# pipeline_dispatch: dispatch-thread cost per access, {reps} reps");
    println!("# trace: dense producer->consumer, ~33k accesses per replay");
    println!(
        "{:<7} {:>14} {:>14} {:>14} {:>10} {:>8}",
        "shards", "mode", "busy ns/acc", "resolve ns/acc", "rec/acc", "drop"
    );
    let mut csv = vec![String::from(
        "shards,mode,busy_ns_per_access,resolve_ns_per_access,records_per_access,accesses",
    )];
    for shards in [2usize, 4, 8] {
        let base = SigilConfig::default()
            .with_reuse_mode()
            .with_line_mode(64)
            .with_shards(shards);
        let legacy = measure(
            &symbols,
            &events,
            base.with_forced_dispatch_oracle()
                .without_dispatch_coalescing(),
            reps,
        );
        let pipelined = measure(&symbols, &events, base, reps);
        let drop_pct = 100.0 * (1.0 - pipelined.busy_ns_per_access / legacy.busy_ns_per_access);
        for (mode, cost, note) in [
            ("legacy", legacy, String::new()),
            ("pipelined", pipelined, format!("{drop_pct:+.1}%")),
        ] {
            println!(
                "{:<7} {:>14} {:>14.1} {:>14.1} {:>10.3} {:>8}",
                shards,
                mode,
                cost.busy_ns_per_access,
                cost.resolve_ns_per_access,
                cost.records_per_access,
                note
            );
            csv.push(format!(
                "{shards},{mode},{:.1},{:.1},{:.4},{}",
                cost.busy_ns_per_access,
                cost.resolve_ns_per_access,
                cost.records_per_access,
                cost.accesses
            ));
        }
    }
    println!("--- csv ---");
    for line in csv {
        println!("{line}");
    }
    sigil_obs::set_enabled(false);
}
