//! **Figure 11**: reuse-lifetime histogram of `imb_XYZ2Lab` in vips
//! (bin size 1000 retired ops).
//!
//! Paper: "'imb_XYZ2Lab' has a peak at 0 re-use and a short tail. …
//! \[it\] reuses data at a higher frequency, which indicates increased
//! temporal locality."

use sigil_analysis::reuse_analysis::lifetime_histogram_of;
use sigil_bench::{csv_header, header, profile};
use sigil_core::SigilConfig;
use sigil_workloads::{Benchmark, InputSize};

fn main() {
    let _obs = sigil_bench::obs::session("fig11_xyz2lab_hist");
    header(
        "Figure 11: reuse-lifetime distribution of imb_XYZ2Lab in vips",
        "peak at bin 0 (immediate re-read), short tail (good temporal locality)",
    );
    let p = profile(
        Benchmark::Vips,
        InputSize::SimSmall,
        SigilConfig::default().with_reuse_mode(),
    );
    let hist = lifetime_histogram_of(&p, "imb_XYZ2Lab").expect("imb_XYZ2Lab reuses data");
    println!("{:>14} {:>12}  bar", "lifetime bin", "bytes");
    let max = hist.iter().map(|(_, c)| c).max().unwrap_or(1);
    for (bin, count) in hist.iter() {
        let bar = "#".repeat(((count * 50) / max) as usize);
        println!("{bin:>14} {count:>12}  {bar}");
    }
    println!(
        "\ntail length: {} ops; non-empty bins: {}; total reused bytes: {}",
        hist.max_lifetime_bin().unwrap_or(0),
        hist.nonempty_bins(),
        hist.total()
    );
    csv_header("lifetime_bin,count");
    for (bin, count) in hist.iter() {
        println!("{bin},{count}");
    }
}
