//! Peak-RSS comparison: streaming vs. in-memory critical path over a
//! large binary event file.
//!
//! The in-memory path decodes the whole file into an `EventFile` and
//! builds the full `DependencyGraph` (one node per record); the
//! streaming path folds `ChunkStream` chunks through `CriticalPathFold`,
//! holding one chunk plus per-call state. Peak RSS is a process-wide
//! high-water mark (`VmHWM` in `/proc/self/status`), so each arm runs in
//! its own child process: the orchestrator writes the file, re-executes
//! itself with `--measure <arm> <file>`, and reports both marks.
//!
//! ```text
//! cargo run --release -p sigil-bench --bin events_rss [records]
//! ```
//!
//! The two arms must agree on the summary (the orchestrator checks), so
//! the RSS gap prices identical work. Results land in
//! `BENCH_events_bin.json`.

use std::io::Write as _;
use std::process::Command;

use sigil_analysis::critical_path::{CommModel, DependencyGraph};
use sigil_analysis::streaming::critical_path_from_bin;
use sigil_core::events_bin::{decode_events, BinWriter};
use sigil_core::EventFile;
use sigil_trace::CallNumber;

/// Deterministic producer/worker/consumer loop, the same shape as the
/// `events_bin` criterion bench.
fn synthetic_events(records: usize) -> EventFile {
    let mut file = EventFile::new();
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut call = 0u64;
    while file.len() < records {
        let parent = call;
        for lane in 0..3u64 {
            call += 1;
            file.push_call(
                CallNumber::from_raw(parent),
                CallNumber::from_raw(call),
                sigil_callgrind::ContextId(2 + lane as u32),
            );
            file.push_compute(
                CallNumber::from_raw(call),
                sigil_callgrind::ContextId(2 + lane as u32),
                1 + rand() % 4096,
            );
            if call > 1 {
                file.push_transfer(
                    CallNumber::from_raw(call - 1),
                    CallNumber::from_raw(call),
                    1 + rand() % 512,
                );
            }
        }
    }
    file
}

/// `VmHWM` (peak resident set) of this process, in KiB.
fn peak_rss_kib() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|kb| kb.trim().parse().ok())
        .unwrap_or(0)
}

/// Child-process arm: compute the critical path one way, print
/// `serial_ops length_ops peak_rss_kib` on one line.
fn measure(arm: &str, path: &str) {
    let (serial_ops, length_ops) = match arm {
        "inmem" => {
            let bytes = std::fs::read(path).expect("read event file");
            let events = decode_events(&bytes).expect("valid binary event file");
            drop(bytes);
            let graph = DependencyGraph::from_event_file_with(&events, &CommModel::free());
            let cp = graph.critical_path().expect("non-empty file");
            (cp.serial_ops, cp.length_ops)
        }
        "stream" => {
            let file = std::fs::File::open(path).expect("open event file");
            let summary = critical_path_from_bin(std::io::BufReader::new(file), &CommModel::free())
                .expect("valid binary event file");
            (summary.serial_ops, summary.length_ops)
        }
        other => panic!("unknown measure arm `{other}`"),
    };
    println!("{serial_ops} {length_ops} {}", peak_rss_kib());
}

/// Runs one arm in a child process, returning (serial, length, peak KiB).
fn run_arm(arm: &str, path: &str) -> (u64, u64, u64) {
    let exe = std::env::current_exe().expect("own path");
    let out = Command::new(exe)
        .args(["--measure", arm, path])
        .output()
        .expect("spawn measurement child");
    assert!(
        out.status.success(),
        "{arm} child failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let mut it = text.split_whitespace().map(|f| f.parse().expect("number"));
    (
        it.next().expect("serial"),
        it.next().expect("length"),
        it.next().expect("rss"),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--measure") {
        measure(&args[1], &args[2]);
        return;
    }
    let records: usize = args
        .first()
        .map(|a| a.parse().expect("record count"))
        .unwrap_or(2_000_000);

    let events = synthetic_events(records);
    let dir = std::env::temp_dir().join("sigil-events-rss");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("synthetic-{records}.evb"));
    let file = std::fs::File::create(&path).expect("create event file");
    let mut writer = BinWriter::new(std::io::BufWriter::new(file)).expect("write header");
    writer.push_file(&events).expect("write records");
    let (totals, inner) = writer.finish().expect("write trailer");
    inner.into_inner().expect("flush").flush().expect("flush");
    let bin_len = std::fs::metadata(&path).expect("stat").len();
    drop(events);

    let path = path.to_string_lossy().into_owned();
    let (s_serial, s_length, s_rss) = run_arm("stream", &path);
    let (m_serial, m_length, m_rss) = run_arm("inmem", &path);
    assert_eq!(
        (s_serial, s_length),
        (m_serial, m_length),
        "streaming and in-memory critical paths disagree"
    );

    println!("# events_rss: streaming vs in-memory critical path");
    println!(
        "file           : {path} ({bin_len} bytes, {} records, {} chunks)",
        totals.records, totals.chunks
    );
    println!("critical path  : serial {s_serial} ops, length {s_length} ops");
    println!("peak RSS inmem : {m_rss} KiB");
    println!("peak RSS stream: {s_rss} KiB");
    println!(
        "ratio          : {:.2}x smaller peak",
        m_rss as f64 / s_rss.max(1) as f64
    );
    let _ = std::fs::remove_file(&path);
}
