//! **Table II**: breakeven speedup for the top 5 functions of
//! blackscholes, bodytrack, canneal and dedup (simsmall).
//!
//! Paper: the top functions are math-library calls and dense kernels
//! (`strtof`, `_ieee754_*`, `FlexImage::Set`,
//! `ImageMeasurements::ImageErrorInside`, `mul`, `memchr`,
//! `netlist::swap_locations`, `sha1_block_data_order`, `adler32`,
//! `_tr_flush_block`) with breakeven speedups close to 1.

use sigil_analysis::partition::{rank_functions, PartitionConfig};
use sigil_bench::{csv_header, header, profile};
use sigil_core::SigilConfig;
use sigil_workloads::{Benchmark, InputSize};

const TABLE_BENCHES: [Benchmark; 4] = [
    Benchmark::Blackscholes,
    Benchmark::Bodytrack,
    Benchmark::Canneal,
    Benchmark::Dedup,
];

fn main() {
    let _obs = sigil_bench::obs::session("table2_breakeven_top");
    header(
        "Table II: breakeven speedup, top 5 functions per benchmark (simsmall)",
        "top candidates are compute-dense kernels/math calls with S(be) close to 1",
    );
    let config = PartitionConfig::default();
    let mut csv = Vec::new();
    for bench in TABLE_BENCHES {
        let p = profile(bench, InputSize::SimSmall, SigilConfig::default());
        let ranked = rank_functions(&p, &config);
        println!("\n{}:", bench.name());
        println!("{:>10}  function", "S(be)");
        for row in ranked.iter().take(5) {
            println!("{:>10.3}  {}", row.breakeven, row.name);
            csv.push((bench, row.name.clone(), row.breakeven));
        }
    }
    csv_header("benchmark,function,breakeven");
    for (bench, name, s) in csv {
        println!("{},{name},{s:.4}", bench.name());
    }
}
