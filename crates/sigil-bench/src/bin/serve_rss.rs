//! Peak-RSS comparison: streaming a trace into a `sigil-serve` session
//! vs. batch-profiling it from a fully materialized event vector.
//!
//! The batch arm must hold the entire trace in memory before replaying
//! it; the serve arm generates events incrementally and ships them
//! through the socket in bounded chunks, so neither the client half nor
//! the server half of the process ever holds more than a chunk plus the
//! profiler's own state. Peak RSS is a process-wide high-water mark
//! (`VmHWM` in `/proc/self/status`), so each arm runs in its own child
//! process: the orchestrator re-executes itself with `--measure <arm>`.
//!
//! ```text
//! cargo run --release -p sigil-bench --bin serve_rss [rounds]
//! ```
//!
//! Both arms print a digest of the finished profile and the orchestrator
//! requires them to agree, so the RSS gap prices identical work.
//! Results land in `BENCH_serve.json`.

use std::process::Command;

use sigil_core::{Profile, SigilConfig, SigilProfiler};
use sigil_serve::{
    encode_trace_records, Client, Listen, ServeConfig, Server, SessionSpec, TraceRecord,
};
use sigil_trace::io::replay;
use sigil_trace::{MemAccess, OpClass, RuntimeEvent, SymbolTable};

const EVENTS_PER_ROUND: usize = 44;
const CHUNK_EVENTS: usize = 4096;

fn config() -> SigilConfig {
    SigilConfig::default().with_reuse_mode().with_line_mode(64)
}

fn symbols() -> (SymbolTable, [sigil_trace::FunctionId; 3]) {
    let mut symbols = SymbolTable::new();
    let main = symbols.intern("main");
    let produce = symbols.intern("produce");
    let consume = symbols.intern("consume");
    (symbols, [main, produce, consume])
}

/// Pushes one producer/consumer round (EVENTS_PER_ROUND events) into `sink`.
fn push_round(
    round: usize,
    [_, produce, consume]: [sigil_trace::FunctionId; 3],
    mut sink: impl FnMut(RuntimeEvent),
) {
    let base = 0x1000 + (round as u64 % 512) * 0x100;
    sink(RuntimeEvent::Call { callee: produce });
    for i in 0..10u64 {
        sink(RuntimeEvent::Write {
            access: MemAccess::new(base + i * 8, 8),
        });
        sink(RuntimeEvent::Op {
            class: OpClass::IntArith,
            count: 3,
        });
    }
    sink(RuntimeEvent::Return);
    sink(RuntimeEvent::Call { callee: consume });
    for i in 0..10u64 {
        sink(RuntimeEvent::Read {
            access: MemAccess::new(base + i * 8, 8),
        });
        sink(RuntimeEvent::Op {
            class: OpClass::FloatArith,
            count: 2,
        });
    }
    sink(RuntimeEvent::Return);
}

/// `VmHWM` (peak resident set) of this process, in KiB.
fn peak_rss_kib() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|kb| kb.trim().parse().ok())
        .unwrap_or(0)
}

/// A tiny order-sensitive digest of the finished profile, so the two
/// arms can be checked for identical results across process boundaries.
fn digest(profile: &Profile) -> u64 {
    let json = serde_json::to_string(profile).expect("profile serializes");
    let mut hash = 0xcbf29ce484222325u64;
    for byte in json.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

fn measure(arm: &str, rounds: usize) {
    let (table, ids) = symbols();
    let profile = match arm {
        "batch" => {
            // Materialize the whole trace, then replay it in-process.
            let mut events = vec![RuntimeEvent::Call { callee: ids[0] }];
            for round in 0..rounds {
                push_round(round, ids, |e| events.push(e));
            }
            events.push(RuntimeEvent::Return);
            let mut profiler = SigilProfiler::new(config());
            replay(&events, &mut profiler);
            profiler.into_profile(table)
        }
        "serve" => {
            // Generate rounds on the fly and ship bounded chunks; the
            // full trace never exists on either side of the socket.
            let server = Server::bind(Listen::parse("127.0.0.1:0"), ServeConfig::default())
                .expect("bind server");
            let mut client = Client::connect(
                &server.address(),
                &SessionSpec::trace("serve-rss", config()),
            )
            .expect("connect");
            let mut pending: Vec<TraceRecord> = table
                .iter()
                .map(|(id, name)| TraceRecord::Sym {
                    id: id.as_raw(),
                    name: name.to_owned(),
                })
                .collect();
            pending.push(TraceRecord::Event(RuntimeEvent::Call { callee: ids[0] }));
            for round in 0..rounds {
                push_round(round, ids, |e| pending.push(TraceRecord::Event(e)));
                if pending.len() >= CHUNK_EVENTS {
                    let payload = encode_trace_records(&pending);
                    client
                        .send_chunk(payload, pending.len() as u32)
                        .expect("send chunk");
                    pending.clear();
                }
            }
            pending.push(TraceRecord::Event(RuntimeEvent::Return));
            let payload = encode_trace_records(&pending);
            client
                .send_chunk(payload, pending.len() as u32)
                .expect("send final chunk");
            let result = client.finish().expect("finish");
            result.profile.expect("trace session returns a profile")
        }
        other => panic!("unknown measure arm `{other}`"),
    };
    println!("{} {}", digest(&profile), peak_rss_kib());
}

/// Runs one arm in a child process, returning (digest, peak KiB).
fn run_arm(arm: &str, rounds: usize) -> (u64, u64) {
    let exe = std::env::current_exe().expect("own path");
    let out = Command::new(exe)
        .args(["--measure", arm, &rounds.to_string()])
        .output()
        .expect("spawn measurement child");
    assert!(
        out.status.success(),
        "{arm} child failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let mut it = text.split_whitespace().map(|f| f.parse().expect("number"));
    (it.next().expect("digest"), it.next().expect("rss"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--measure") {
        let rounds = args[2].parse().expect("round count");
        measure(&args[1], rounds);
        return;
    }
    let rounds: usize = args
        .first()
        .map(|a| a.parse().expect("round count"))
        .unwrap_or(100_000);
    let events = 2 + rounds * EVENTS_PER_ROUND;

    let (batch_digest, batch_rss) = run_arm("batch", rounds);
    let (serve_digest, serve_rss) = run_arm("serve", rounds);
    assert_eq!(
        batch_digest, serve_digest,
        "the two arms disagree on the finished profile"
    );
    println!("events: {events}");
    println!("profile digest (identical across arms): {batch_digest:#018x}");
    println!("peak RSS batch (full trace in memory): {batch_rss} KiB");
    println!("peak RSS serve (chunked over the socket): {serve_rss} KiB");
    println!("ratio: {:.2}", batch_rss as f64 / serve_rss.max(1) as f64);
}
