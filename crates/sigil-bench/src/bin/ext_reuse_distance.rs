//! **Extension (paper §IV-B3)**: reuse-distance analysis — "This
//! information can be used for re-use distance analysis and to inform
//! cache-replacement policies." For each benchmark, the Mattson LRU
//! stack-distance histogram over 64-byte lines yields fully-associative
//! miss ratios for every capacity at once.

use sigil_bench::{csv_header, header};
use sigil_callgrind::stackdist::ReuseDistanceObserver;
use sigil_trace::Engine;
use sigil_workloads::{Benchmark, InputSize};

const CAPACITIES: [u64; 5] = [64, 256, 1024, 4096, 16384];

fn main() {
    let _obs = sigil_bench::obs::session("ext_reuse_distance");
    header(
        "Extension: LRU reuse-distance miss ratios (64-byte lines)",
        "streaming benchmarks stay miss-bound at any capacity; iterative ones fall off fast",
    );
    println!(
        "{:>14} {:>8} {:>8} {:>8} {:>8} {:>8}   (cache lines)",
        "benchmark", "64", "256", "1k", "4k", "16k"
    );
    let mut csv = Vec::new();
    for bench in Benchmark::ALL {
        let mut engine = Engine::new(ReuseDistanceObserver::new(64));
        bench.run(InputSize::SimSmall, &mut engine);
        let hist = engine.finish().into_histogram();
        let ratios: Vec<f64> = CAPACITIES.iter().map(|&c| hist.miss_ratio(c)).collect();
        print!("{:>14}", bench.name());
        for r in &ratios {
            print!(" {:>7.1}%", 100.0 * r);
        }
        println!();
        csv.push((bench, ratios));
    }
    csv_header("benchmark,cap64,cap256,cap1k,cap4k,cap16k");
    for (bench, ratios) in csv {
        println!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4}",
            bench.name(),
            ratios[0],
            ratios[1],
            ratios[2],
            ratios[3],
            ratios[4]
        );
    }
}
