//! VM interpretation cost: the DBI stand-in running guest kernels under
//! no instrumentation vs full Sigil — the per-primitive profiling cost on
//! genuinely interpreted (rather than directly generated) event streams.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sigil_core::{SigilConfig, SigilProfiler};
use sigil_trace::observer::NullObserver;
use sigil_trace::Engine;
use sigil_vm::Interpreter;
use sigil_workloads::vm_kernels;

fn vm_interp(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_interp");
    group.sample_size(20);

    let programs = [
        ("vector_add_4k", vm_kernels::vector_add(4096)),
        ("fibonacci_18", vm_kernels::fibonacci(18)),
        ("dot_product_4k", vm_kernels::dot_product(4096)),
    ];

    for (name, program) in &programs {
        group.bench_with_input(BenchmarkId::new("native", name), program, |b, program| {
            b.iter(|| {
                let mut engine = Engine::new(NullObserver);
                Interpreter::new(program)
                    .run(&mut engine)
                    .expect("kernel runs clean")
            });
        });
        group.bench_with_input(BenchmarkId::new("sigil", name), program, |b, program| {
            b.iter(|| {
                let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
                Interpreter::new(program)
                    .run(&mut engine)
                    .expect("kernel runs clean");
                let (p, s) = engine.finish_with_symbols();
                p.into_profile(s)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, vm_interp);
criterion_main!(benches);
