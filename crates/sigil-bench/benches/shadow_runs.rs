//! Per-byte vs. ranged shadow-table access.
//!
//! `SigilProfiler` used to call `ShadowTable::slot_mut` once per byte of
//! every access, paying a chunk split, MRU check, and counter bump per
//! byte; it now walks `ShadowTable::runs_mut`, which resolves the chunk
//! once per maximal in-chunk run. This group prices both paths on the
//! access shapes that matter: dense sequential accesses (the common
//! case — the run covers the whole access), strided small accesses
//! (short runs, the range API's worst case), and accesses that straddle
//! the 4 KiB chunk split (two runs per access).
//!
//! The acceptance bar from the optimization PR: `ranged/dense` at least
//! 2x faster than `per_byte/dense`. Results land in
//! `BENCH_shadow_runs.json` alongside `sigil sweep` wall times.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sigil_mem::{ShadowTable, CHUNK_SLOTS};

/// One synthetic access: `len` consecutive shadow slots from `addr`.
type Access = (u64, usize);

/// Dense: back-to-back 64-byte accesses sweeping a 16-chunk working set.
fn dense_pattern() -> Vec<Access> {
    (0..1024).map(|i| (i * 64, 64)).collect()
}

/// Strided: 8-byte accesses every 64 bytes over the same working set.
fn strided_pattern() -> Vec<Access> {
    (0..1024).map(|i| (i * 64, 8)).collect()
}

/// Chunk-crossing: 64-byte accesses centered on every 4 KiB split of a
/// 256-chunk span, so each access resolves two chunks.
fn crossing_pattern() -> Vec<Access> {
    let chunk = CHUNK_SLOTS as u64;
    (1..=256).map(|i| (i * chunk - 32, 64)).collect()
}

/// The old hot path: one full table lookup per byte.
fn per_byte(table: &mut ShadowTable<u64>, accesses: &[Access]) -> u64 {
    let mut acc = 0u64;
    for &(addr, len) in accesses {
        for i in 0..len as u64 {
            let slot = table.slot_mut(addr + i);
            *slot = slot.wrapping_add(1);
            acc = acc.wrapping_add(*slot);
        }
    }
    acc
}

/// The new hot path: one lookup per maximal in-chunk run.
fn ranged(table: &mut ShadowTable<u64>, accesses: &[Access]) -> u64 {
    let mut acc = 0u64;
    for &(addr, len) in accesses {
        let mut runs = table.runs_mut(addr, len);
        while let Some((_, slots)) = runs.next_run() {
            for slot in slots {
                *slot = slot.wrapping_add(1);
                acc = acc.wrapping_add(*slot);
            }
        }
    }
    acc
}

fn shadow_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("shadow_runs");
    group.sample_size(30);
    let patterns: [(&str, Vec<Access>); 3] = [
        ("dense", dense_pattern()),
        ("strided", strided_pattern()),
        ("chunk_crossing", crossing_pattern()),
    ];
    for (name, accesses) in &patterns {
        // One warm table per arm: chunks stay resident, so the numbers
        // isolate lookup cost rather than first-touch allocation.
        let mut table: ShadowTable<u64> = ShadowTable::new();
        per_byte(&mut table, accesses);
        group.bench_with_input(
            BenchmarkId::new("per_byte", name),
            accesses,
            |b, accesses| {
                b.iter(|| black_box(per_byte(&mut table, accesses)));
            },
        );
        let mut table: ShadowTable<u64> = ShadowTable::new();
        ranged(&mut table, accesses);
        group.bench_with_input(BenchmarkId::new("ranged", name), accesses, |b, accesses| {
            b.iter(|| black_box(ranged(&mut table, accesses)));
        });
    }
    group.finish();
}

criterion_group!(benches, shadow_runs);
criterion_main!(benches);
