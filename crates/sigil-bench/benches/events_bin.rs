//! Binary event-format throughput: encode, decode, and the streaming
//! critical-path fold, against text parse/serialize on the same records.
//!
//! One iteration processes the whole event file of the `vips` workload
//! (about 20k records) plus a 128k-record synthetic file shaped like a
//! pipelined workload loop, so ns/iter divided by the record count gives
//! events/sec for `BENCH_events_bin.json`.
//!
//! The acceptance bar from the format PR: the binary file at the default
//! chunk size is at least 3x smaller than the text form, and the
//! streaming fold prices no slower than decode-then-fold (it does
//! strictly less work: no record materialization into an `EventFile`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sigil_analysis::streaming::CriticalPathFold;
use sigil_analysis::CommModel;
use sigil_core::events_bin::{decode_events, encode_events, BinReader, ChunkStream};
use sigil_core::{EventFile, SigilConfig};
use sigil_workloads::{Benchmark, InputSize};

/// The `vips` event file: the suite's image pipeline, recorded exactly
/// as `sigil events dump vips` would.
fn vips_events() -> EventFile {
    sigil_bench::profile(
        Benchmark::Vips,
        InputSize::SimSmall,
        SigilConfig::default().with_events(),
    )
    .events
    .expect("events recording enabled")
}

/// A 128k-record synthetic file: a producer/worker/consumer loop with
/// deterministic (xorshift) op and byte counts, the shape the format's
/// delta encoding is tuned for.
fn synthetic_events(records: usize) -> EventFile {
    let mut file = EventFile::new();
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut call = 0u64;
    while file.len() < records {
        let parent = call;
        for lane in 0..3u64 {
            call += 1;
            file.push_call(
                sigil_trace::CallNumber::from_raw(parent),
                sigil_trace::CallNumber::from_raw(call),
                sigil_callgrind::ContextId(2 + lane as u32),
            );
            file.push_compute(
                sigil_trace::CallNumber::from_raw(call),
                sigil_callgrind::ContextId(2 + lane as u32),
                1 + rand() % 4096,
            );
            if call > 1 {
                file.push_transfer(
                    sigil_trace::CallNumber::from_raw(call - 1),
                    sigil_trace::CallNumber::from_raw(call),
                    1 + rand() % 512,
                );
            }
        }
    }
    file
}

fn events_bin(c: &mut Criterion) {
    let mut group = c.benchmark_group("events_bin");
    group.sample_size(20);
    let inputs: [(&str, EventFile); 2] = [
        ("vips", vips_events()),
        ("synthetic_128k", synthetic_events(128 * 1024)),
    ];
    for (name, events) in &inputs {
        let text = events.to_text();
        let bytes = encode_events(events);
        group.bench_with_input(BenchmarkId::new("encode", name), events, |b, events| {
            b.iter(|| black_box(encode_events(events)));
        });
        group.bench_with_input(BenchmarkId::new("decode", name), &bytes, |b, bytes| {
            b.iter(|| black_box(decode_events(bytes).expect("valid file")));
        });
        group.bench_with_input(
            BenchmarkId::new("stream_critpath", name),
            &bytes,
            |b, bytes| {
                b.iter(|| {
                    let mut stream = ChunkStream::new(&bytes[..]).expect("valid header");
                    let mut fold = CriticalPathFold::with_comm(CommModel::free());
                    while let Some(records) = stream.next_chunk().expect("valid chunk") {
                        fold.extend(records);
                    }
                    black_box(fold.finish().expect("non-empty file"))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("stat_trailer", name),
            &bytes,
            |b, bytes| {
                b.iter(|| black_box(BinReader::parse(bytes).expect("valid file").totals()));
            },
        );
        group.bench_with_input(BenchmarkId::new("text_parse", name), &text, |b, text| {
            b.iter(|| black_box(EventFile::from_text(text).expect("valid text")));
        });
        group.bench_with_input(
            BenchmarkId::new("text_serialize", name),
            events,
            |b, events| {
                b.iter(|| black_box(events.to_text()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, events_bin);
criterion_main!(benches);
