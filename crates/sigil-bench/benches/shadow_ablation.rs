//! Ablation of the shadow-memory design (DESIGN.md): the paper's
//! two-level chunked table vs a naive flat `HashMap<addr, object>`
//! shadow, on sequential and strided access patterns; plus the cost of
//! the FIFO/LRU limiter and the one-entry MRU chunk cache.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sigil_core::sweep::run_parallel;
use sigil_mem::{EvictionPolicy, MemoryStats, ShadowObject, ShadowTable};
use sigil_trace::CallNumber;

const TOUCHES: u64 = 100_000;

fn sequential_addrs() -> impl Iterator<Item = u64> {
    0..TOUCHES
}

fn strided_addrs() -> impl Iterator<Item = u64> {
    // A large-stride pattern confined to a 4 MiB region (1024 chunks):
    // hostile to chunk locality without ballooning resident shadow state.
    (0..TOUCHES).map(|i| (i * 4097) % (1 << 22))
}

fn run_table(addrs: impl Iterator<Item = u64>, table: &mut ShadowTable<ShadowObject>) {
    let owner = sigil_mem::Owner::new(1, CallNumber::from_raw(1), 0);
    for addr in addrs {
        table.slot_mut(addr).record_write(owner);
    }
}

fn run_hashmap(addrs: impl Iterator<Item = u64>, map: &mut HashMap<u64, ShadowObject>) {
    let owner = sigil_mem::Owner::new(1, CallNumber::from_raw(1), 0);
    for addr in addrs {
        map.entry(addr).or_default().record_write(owner);
    }
}

/// Prints the MRU chunk-cache hit rate per access pattern, so the timing
/// numbers below can be read against how often the hot path actually
/// skipped the hash probe. The patterns are independent, so they are
/// characterized concurrently via the sweep driver.
fn report_mru_hit_rates() {
    let patterns: Vec<&str> = vec!["sequential", "strided"];
    let stats: Vec<(&str, MemoryStats)> = run_parallel(patterns.len(), patterns, |pattern| {
        let mut table: ShadowTable<ShadowObject> = ShadowTable::new();
        match pattern {
            "sequential" => run_table(sequential_addrs(), &mut table),
            _ => run_table(strided_addrs(), &mut table),
        }
        (pattern, table.stats())
    });
    println!("--- MRU chunk-cache hit rates ({TOUCHES} touches) ---");
    for (pattern, stats) in stats {
        println!(
            "{pattern:>12}: {:.2}% hits ({} of {} accesses, {} probes)",
            stats.mru_hit_rate() * 100.0,
            stats.mru_hits,
            stats.accesses,
            stats.table_probes
        );
    }
}

fn shadow_ablation(c: &mut Criterion) {
    report_mru_hit_rates();
    let mut group = c.benchmark_group("shadow_ablation");
    group.sample_size(20);

    for (pattern, gen) in [("sequential", true), ("strided", false)] {
        group.bench_with_input(
            BenchmarkId::new("two_level_table", pattern),
            &gen,
            |b, &sequential| {
                b.iter(|| {
                    let mut table = ShadowTable::new();
                    if sequential {
                        run_table(sequential_addrs(), &mut table);
                    } else {
                        run_table(strided_addrs(), &mut table);
                    }
                    table.chunk_count()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("flat_hashmap", pattern),
            &gen,
            |b, &sequential| {
                b.iter(|| {
                    let mut map = HashMap::new();
                    if sequential {
                        run_hashmap(sequential_addrs(), &mut map);
                    } else {
                        run_hashmap(strided_addrs(), &mut map);
                    }
                    map.len()
                });
            },
        );
    }

    // Eviction churn: every touch lands in a new chunk, so the limiter
    // evicts constantly. Fewer touches keep the worst case measurable.
    for policy in [EvictionPolicy::Fifo, EvictionPolicy::Lru] {
        group.bench_with_input(
            BenchmarkId::new("limited_strided", format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut table: ShadowTable<ShadowObject> =
                        ShadowTable::with_chunk_limit(64, policy);
                    run_table(strided_addrs().take(TOUCHES as usize / 20), &mut table);
                    table.evicted_chunks()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, shadow_ablation);
criterion_main!(benches);
