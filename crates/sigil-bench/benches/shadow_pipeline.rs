//! Pipelined epoch dispatch vs. the legacy per-access dispatch path.
//!
//! The sharded replay engine (`sigil_core::shard`) resolves accesses in
//! epochs: with no shadow-chunk limit the dispatch-side residency oracle
//! is elided entirely, and consecutive same-shard runs coalesce into one
//! channel record. This group prices that restructuring two ways:
//!
//! - `replay_dense/N` — the default pipelined engine across shard counts
//!   1, 2, 4, and 8 (the scaling curve recorded in
//!   `BENCH_shadow_pipeline.json`);
//! - `legacy_dispatch/N` — the same replay with the dispatch oracle
//!   pinned on and coalescing off
//!   (`with_forced_dispatch_oracle().without_dispatch_coalescing()`),
//!   i.e. the pre-pipeline per-access behaviour kept as a baseline.
//!
//! Each iteration includes `into_profile`, which joins the workers and
//! merges their fragments — the full cost a `sigil profile --shards N`
//! run pays.
//!
//! Interpretation note: on a single-core container the sharded arms
//! price pure overhead, so the honest claim here is *reduced
//! dispatch-thread cost per access* (see the `pipeline_dispatch` binary
//! for the direct `dispatch.busy_ns` comparison), not wall-clock
//! speedup. Multi-core scaling is environment-gated; see
//! `BENCH_shadow_pipeline.json` for the measured numbers and the core
//! count they were taken on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sigil_core::{SigilConfig, SigilProfiler};
use sigil_trace::observer::RecordingObserver;
use sigil_trace::{io::replay, Engine, OpClass, RuntimeEvent, SymbolTable};

/// Records a dense trace: eight producer→consumer rounds sweeping
/// 64-byte runs across a 64-chunk working set (~33k accesses), the
/// access shape where shadow lookups dominate profiling cost.
fn record_dense() -> (SymbolTable, Vec<RuntimeEvent>) {
    const SPAN: u64 = 64 * 4096;
    let mut engine = Engine::new(RecordingObserver::new());
    engine.scoped_named("main", |e| {
        for _ in 0..8 {
            e.scoped_named("producer", |e| {
                e.op(OpClass::IntArith, 16);
                for i in 0..2048u64 {
                    e.write((i * 64) % SPAN, 64);
                }
            });
            e.scoped_named("consumer", |e| {
                for i in 0..2048u64 {
                    e.read((i * 64) % SPAN, 64);
                }
                e.op(OpClass::FloatArith, 16);
            });
        }
    });
    let (observer, symbols) = engine.finish_with_symbols();
    (symbols, observer.into_events())
}

fn shadow_pipeline(c: &mut Criterion) {
    let (symbols, events) = record_dense();
    let mut group = c.benchmark_group("shadow_pipeline");
    group.sample_size(30);
    for shards in [1usize, 2, 4, 8] {
        let config = SigilConfig::default()
            .with_reuse_mode()
            .with_line_mode(64)
            .with_shards(shards);
        group.bench_with_input(
            BenchmarkId::new("replay_dense", shards),
            &events,
            |b, events| {
                b.iter(|| {
                    let mut profiler = SigilProfiler::new(config);
                    replay(events, &mut profiler);
                    black_box(profiler.into_profile(symbols.clone()))
                });
            },
        );
    }
    // Legacy baseline: dispatch oracle pinned on, coalescing off. Only
    // meaningful for sharded replay (serial has no dispatch thread).
    for shards in [2usize, 4, 8] {
        let config = SigilConfig::default()
            .with_reuse_mode()
            .with_line_mode(64)
            .with_shards(shards)
            .with_forced_dispatch_oracle()
            .without_dispatch_coalescing();
        group.bench_with_input(
            BenchmarkId::new("legacy_dispatch", shards),
            &events,
            |b, events| {
                b.iter(|| {
                    let mut profiler = SigilProfiler::new(config);
                    replay(events, &mut profiler);
                    black_box(profiler.into_profile(symbols.clone()))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, shadow_pipeline);
criterion_main!(benches);
