//! Criterion companion to Figures 4/5: per-benchmark cost of a native
//! (null-observer) run vs Callgrind-like profiling vs full Sigil
//! profiling of the same trace, plus the cost of running the same
//! profile with `sigil-obs` instrumentation enabled vs disabled
//! (`sigil_obs_off` should match `sigil` — the disabled path is a
//! handful of relaxed atomic loads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sigil_callgrind::{CallgrindConfig, CallgrindProfiler};
use sigil_core::{SigilConfig, SigilProfiler};
use sigil_trace::observer::NullObserver;
use sigil_trace::Engine;
use sigil_workloads::{Benchmark, InputSize};

const BENCHES: [Benchmark; 3] = [
    Benchmark::Blackscholes,
    Benchmark::Streamcluster,
    Benchmark::Dedup,
];

fn overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead");
    group.sample_size(10);
    for bench in BENCHES {
        group.bench_with_input(
            BenchmarkId::new("native", bench.name()),
            &bench,
            |b, &bench| {
                b.iter(|| {
                    let mut engine = Engine::new(NullObserver);
                    bench.run(InputSize::SimSmall, &mut engine);
                    engine.finish()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("callgrind", bench.name()),
            &bench,
            |b, &bench| {
                b.iter(|| {
                    let mut engine =
                        Engine::new(CallgrindProfiler::new(CallgrindConfig::default()));
                    bench.run(InputSize::SimSmall, &mut engine);
                    let (p, s) = engine.finish_with_symbols();
                    p.into_profile(s)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sigil", bench.name()),
            &bench,
            |b, &bench| {
                b.iter(|| {
                    let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
                    bench.run(InputSize::SimSmall, &mut engine);
                    let (p, s) = engine.finish_with_symbols();
                    p.into_profile(s)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sigil_reuse", bench.name()),
            &bench,
            |b, &bench| {
                b.iter(|| {
                    let mut engine =
                        Engine::new(SigilProfiler::new(SigilConfig::default().with_reuse_mode()));
                    bench.run(InputSize::SimSmall, &mut engine);
                    let (p, s) = engine.finish_with_symbols();
                    p.into_profile(s)
                });
            },
        );
        // Same profile run with observability off (the default) and on:
        // the off column is the guard against instrumentation creep in
        // the hot path, the on column prices the spans + metric export.
        group.bench_with_input(
            BenchmarkId::new("sigil_obs_off", bench.name()),
            &bench,
            |b, &bench| {
                sigil_obs::set_enabled(false);
                b.iter(|| {
                    let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
                    bench.run(InputSize::SimSmall, &mut engine);
                    let (p, s) = engine.finish_with_symbols();
                    p.into_profile(s)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sigil_obs_on", bench.name()),
            &bench,
            |b, &bench| {
                sigil_obs::set_enabled(true);
                b.iter(|| {
                    let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
                    bench.run(InputSize::SimSmall, &mut engine);
                    let (p, s) = engine.finish_with_symbols();
                    p.into_profile(s)
                });
                sigil_obs::set_enabled(false);
                sigil_obs::span::clear();
                sigil_obs::metrics::clear();
            },
        );
    }
    group.finish();
}

criterion_group!(benches, overhead);
criterion_main!(benches);
