//! Serial vs. sharded profiler replay.
//!
//! `SigilConfig::with_shards(n)` fans shadow-memory replay out to `n`
//! worker threads, with the dispatch thread running a zero-sized
//! residency oracle plus the line table and per-access tallies (see
//! `sigil_core::shard`). This group prices that split end-to-end: one
//! dense producer→consumer trace is recorded once, then replayed through
//! `SigilProfiler` at shard counts 1 (the serial path), 2, and 4. Each
//! iteration includes `into_profile`, which joins the workers and merges
//! their fragments — the full cost a `sigil profile --shards N` run
//! pays.
//!
//! Interpretation note: sharding trades dispatch/channel overhead for
//! parallel shadow lookups, so the speedup is bounded by the physical
//! core count. On a single-core container the sharded arms price pure
//! overhead (they cannot be faster than serial there); see
//! `BENCH_shadow_shards.json` for the measured numbers and the core
//! count they were taken on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sigil_core::{SigilConfig, SigilProfiler};
use sigil_trace::observer::RecordingObserver;
use sigil_trace::{io::replay, Engine, OpClass, RuntimeEvent, SymbolTable};

/// Records a dense trace: eight producer→consumer rounds sweeping
/// 64-byte runs across a 64-chunk working set (~33k accesses), the
/// access shape where shadow lookups dominate profiling cost.
fn record_dense() -> (SymbolTable, Vec<RuntimeEvent>) {
    const SPAN: u64 = 64 * 4096;
    let mut engine = Engine::new(RecordingObserver::new());
    engine.scoped_named("main", |e| {
        for _ in 0..8 {
            e.scoped_named("producer", |e| {
                e.op(OpClass::IntArith, 16);
                for i in 0..2048u64 {
                    e.write((i * 64) % SPAN, 64);
                }
            });
            e.scoped_named("consumer", |e| {
                for i in 0..2048u64 {
                    e.read((i * 64) % SPAN, 64);
                }
                e.op(OpClass::FloatArith, 16);
            });
        }
    });
    let (observer, symbols) = engine.finish_with_symbols();
    (symbols, observer.into_events())
}

fn shadow_shards(c: &mut Criterion) {
    let (symbols, events) = record_dense();
    let mut group = c.benchmark_group("shadow_shards");
    group.sample_size(30);
    for shards in [1usize, 2, 4] {
        let config = SigilConfig::default()
            .with_reuse_mode()
            .with_line_mode(64)
            .with_shards(shards);
        group.bench_with_input(
            BenchmarkId::new("replay_dense", shards),
            &events,
            |b, events| {
                b.iter(|| {
                    let mut profiler = SigilProfiler::new(config);
                    replay(events, &mut profiler);
                    black_box(profiler.into_profile(symbols.clone()))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, shadow_shards);
criterion_main!(benches);
