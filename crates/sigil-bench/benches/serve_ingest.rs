//! Ingest throughput of the `sigil-serve` daemon: how fast a live TCP
//! session swallows a trace, single-session and 4-way concurrent,
//! against the in-process batch replay of the exact same events.
//!
//! One iteration streams (or replays) the whole synthetic trace — about
//! 100k runtime events of a producer/consumer loop with real
//! cross-function communication — so ns/iter divided by the event count
//! gives events/sec for `BENCH_serve.json`. The 4-way arm streams the
//! same trace over four concurrent sessions and counts 4x the events per
//! iteration: it prices session isolation (per-session worker threads,
//! shared metrics registry), not speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use sigil_core::{SigilConfig, SigilProfiler};
use sigil_serve::{Client, Listen, ServeConfig, Server, SessionSpec};
use sigil_trace::io::replay;
use sigil_trace::{MemAccess, OpClass, RuntimeEvent, SymbolTable};

/// Producer/consumer rounds with disjoint-then-reused buffers: writes,
/// cross-function reads, ops, branches, and a thread switch per round,
/// the event mix a real frontend would emit.
fn synthetic_trace(rounds: usize) -> (SymbolTable, Vec<RuntimeEvent>) {
    let mut symbols = SymbolTable::new();
    let main = symbols.intern("main");
    let produce = symbols.intern("produce");
    let consume = symbols.intern("consume");
    let mut events = vec![RuntimeEvent::Call { callee: main }];
    for round in 0..rounds {
        let base = 0x1000 + (round as u64 % 64) * 0x100;
        events.push(RuntimeEvent::Call { callee: produce });
        for i in 0..8u64 {
            events.push(RuntimeEvent::Write {
                access: MemAccess::new(base + i * 8, 8),
            });
            events.push(RuntimeEvent::Op {
                class: OpClass::IntArith,
                count: 3,
            });
        }
        events.push(RuntimeEvent::Return);
        events.push(RuntimeEvent::Call { callee: consume });
        for i in 0..8u64 {
            events.push(RuntimeEvent::Read {
                access: MemAccess::new(base + i * 8, 8),
            });
            events.push(RuntimeEvent::Op {
                class: OpClass::FloatArith,
                count: 2,
            });
            events.push(RuntimeEvent::Branch {
                site: base + i,
                taken: i % 3 != 0,
            });
        }
        events.push(RuntimeEvent::Return);
        if round % 16 == 15 {
            events.push(RuntimeEvent::ThreadSwitch {
                thread: sigil_trace::ThreadId::from_raw((round / 16) as u32 % 4),
            });
        }
    }
    events.push(RuntimeEvent::Return);
    (symbols, events)
}

fn bench_config() -> SigilConfig {
    SigilConfig::default().with_reuse_mode().with_line_mode(64)
}

fn stream_once(address: &str, name: &str, symbols: &SymbolTable, events: &[RuntimeEvent]) {
    let mut client =
        Client::connect(address, &SessionSpec::trace(name, bench_config())).expect("connect");
    client
        .stream_trace(symbols, events)
        .expect("stream the trace");
    let result = client.finish().expect("finish the session");
    assert_eq!(result.records, events.len() as u64, "server lost events");
}

fn serve_ingest(c: &mut Criterion) {
    let (symbols, events) = synthetic_trace(2048); // ~100k events
    let server =
        Server::bind(Listen::parse("127.0.0.1:0"), ServeConfig::default()).expect("bind server");
    let address = server.address();

    let mut group = c.benchmark_group("serve_ingest");
    group.sample_size(10);

    // Baseline: the same events through the in-process batch pipeline.
    group.bench_function("batch_replay", |b| {
        b.iter(|| {
            let mut profiler = SigilProfiler::new(bench_config());
            replay(&events, &mut profiler);
            profiler.into_profile(symbols.clone())
        })
    });

    // One session end-to-end: connect, stream every chunk through the
    // socket and the bounded ingest queue, FINISH, full profile back.
    group.bench_function("session_single", |b| {
        b.iter(|| stream_once(&address, "bench-single", &symbols, &events))
    });

    // Four concurrent sessions of the same trace: 4x the events per
    // iteration across four worker threads.
    group.bench_function("session_4way", |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for lane in 0..4 {
                    let address = &address;
                    let symbols = &symbols;
                    let events = &events;
                    scope.spawn(move || {
                        stream_once(address, &format!("bench-lane-{lane}"), symbols, events)
                    });
                }
            })
        })
    });

    group.finish();
    drop(server);
}

criterion_group!(benches, serve_ingest);
criterion_main!(benches);
