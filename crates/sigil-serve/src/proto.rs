//! The `sigil-serve` wire protocol: length-framed messages whose data
//! payloads reuse the repository's existing binary encodings.
//!
//! # Frame layout (all integers little-endian)
//!
//! ```text
//! kind u8 | aux u32 | payload_len u32 | fnv1a64 u64 | payload
//! ```
//!
//! This mirrors the SGEB chunk frame of [`sigil_core::events_bin`]
//! (`record_count u32 | payload_len u32 | fnv1a64 u64 | payload`) with
//! the chunk tag generalized to a frame kind and the record count to a
//! kind-specific `aux` field. The checksum covers the first nine header
//! bytes *and* the payload, so any bit flip outside the checksum field
//! itself is detected. `payload_len` is bounded by
//! [`sigil_core::events_bin::MAX_PAYLOAD`] — an untrusted length can
//! never force a huge allocation.
//!
//! # Frame kinds
//!
//! | kind       | dir | aux          | payload                          |
//! |------------|-----|--------------|----------------------------------|
//! | HELLO      | c→s | 0            | [`SessionSpec`] JSON             |
//! | WELCOME    | s→c | 0            | [`Welcome`] JSON                 |
//! | CHUNK      | c→s | record count | SGEB chunk payload / trace records |
//! | CREDIT     | s→c | credits      | empty                            |
//! | STATUS     | c→s | 0            | empty                            |
//! | STATUS_OK  | s→c | 0            | [`StatusInfo`] JSON              |
//! | SNAPSHOT   | c→s | 0            | empty                            |
//! | SNAPSHOT_OK| s→c | 0            | [`SnapshotInfo`] JSON            |
//! | FINISH     | c→s | 0            | empty                            |
//! | RESULT     | s→c | 0            | [`SessionResult`] JSON           |
//! | ERROR      | s→c | 0            | [`WireError`] JSON               |
//! | SHUTDOWN   | c→s | 0            | empty                            |
//! | SHUTDOWN_OK| s→c | 0            | [`ShutdownSummary`] JSON         |
//!
//! A CHUNK's payload encoding depends on the session mode declared in
//! HELLO: `events` sessions carry the exact SGEB chunk payload bytes
//! ([`sigil_core::events_bin::encode_chunk_payload`]); `trace` sessions
//! carry [`TraceRecord`]s — symbol definitions interleaved with the
//! fixed-width `.sgtr` event encoding of [`sigil_trace::io`].

use std::fmt;
use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};
use sigil_analysis::streaming::PathSummary;
use sigil_core::events_bin::{payload_checksum, MAX_PAYLOAD};
use sigil_core::{PhaseProfile, Profile, SigilConfig};
use sigil_mem::EvictionPolicy;
use sigil_trace::RuntimeEvent;

/// Wire-protocol version, carried in HELLO/WELCOME.
pub const WIRE_VERSION: u32 = 1;

/// Byte length of a frame header.
pub const FRAME_HEADER_LEN: usize = 17;

/// Frame kinds. Values are stable wire bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Session open request (client → server).
    Hello = 0x01,
    /// Session accepted (server → client).
    Welcome = 0x02,
    /// One chunk of session data (client → server).
    Chunk = 0x03,
    /// Backpressure credit grant (server → client).
    Credit = 0x04,
    /// Lightweight ingest-counter query (client → server).
    Status = 0x05,
    /// STATUS reply (server → client).
    StatusOk = 0x06,
    /// Live aggregate snapshot query (client → server).
    Snapshot = 0x07,
    /// SNAPSHOT reply (server → client).
    SnapshotOk = 0x08,
    /// End of stream; finalize and report (client → server).
    Finish = 0x09,
    /// Final session result (server → client).
    Result = 0x0a,
    /// Fatal session error, located (server → client).
    Error = 0x0b,
    /// Server shutdown request (client → server).
    Shutdown = 0x0c,
    /// Shutdown acknowledged, sessions drained (server → client).
    ShutdownOk = 0x0d,
}

impl FrameKind {
    /// Decodes a wire byte.
    pub fn from_byte(byte: u8) -> Option<FrameKind> {
        use FrameKind::*;
        Some(match byte {
            0x01 => Hello,
            0x02 => Welcome,
            0x03 => Chunk,
            0x04 => Credit,
            0x05 => Status,
            0x06 => StatusOk,
            0x07 => Snapshot,
            0x08 => SnapshotOk,
            0x09 => Finish,
            0x0a => Result,
            0x0b => Error,
            0x0c => Shutdown,
            0x0d => ShutdownOk,
            _ => return None,
        })
    }
}

/// A protocol failure, located at the connection byte offset where the
/// malformed frame started.
#[derive(Debug)]
pub enum ProtoError {
    /// An underlying socket/stream error.
    Io(io::Error),
    /// Malformed bytes at `offset` (bytes since the connection opened).
    Format {
        /// Byte offset of the frame whose decoding failed.
        offset: u64,
        /// Human-readable description.
        message: String,
    },
}

impl ProtoError {
    pub(crate) fn format(offset: u64, message: impl Into<String>) -> Self {
        ProtoError::Format {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "wire I/O error: {e}"),
            ProtoError::Format { offset, message } => {
                write!(f, "bad frame at connection offset {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for ProtoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtoError::Io(e) => Some(e),
            ProtoError::Format { .. } => None,
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// One wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame means.
    pub kind: FrameKind,
    /// Kind-specific count (CHUNK: records; CREDIT: granted credits).
    pub aux: u32,
    /// Kind-specific payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A payload-less frame.
    pub fn control(kind: FrameKind) -> Frame {
        Frame {
            kind,
            aux: 0,
            payload: Vec::new(),
        }
    }

    /// Serializes the frame, header checksum included.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + self.payload.len());
        out.push(self.kind as u8);
        out.extend_from_slice(&self.aux.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        let mut check = out.clone();
        check.extend_from_slice(&self.payload);
        out.extend_from_slice(&payload_checksum(&check).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Writes the frame to `writer`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        writer.write_all(&self.encode())?;
        writer.flush()
    }

    /// Reads one frame from `reader`. `offset` is the connection byte
    /// offset of the next unread byte; it advances past the frame on
    /// success and is used to locate errors.
    ///
    /// # Errors
    ///
    /// Returns a located [`ProtoError`] on an unknown kind, an oversized
    /// or mismatched length, a checksum mismatch, or truncation.
    pub fn read_from<R: Read>(reader: &mut R, offset: &mut u64) -> Result<Frame, ProtoError> {
        let at = *offset;
        let mut header = [0u8; FRAME_HEADER_LEN];
        reader.read_exact(&mut header).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                ProtoError::format(at, "connection closed mid-frame (truncated header)")
            } else {
                ProtoError::Io(e)
            }
        })?;
        let kind_byte = header[0];
        let aux = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes"));
        let payload_len = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes"));
        let stored_checksum = u64::from_le_bytes(header[9..17].try_into().expect("8 bytes"));
        let kind = FrameKind::from_byte(kind_byte).ok_or_else(|| {
            ProtoError::format(at, format!("unknown frame kind {kind_byte:#04x}"))
        })?;
        if payload_len > MAX_PAYLOAD {
            return Err(ProtoError::format(
                at,
                format!("frame payload length {payload_len} exceeds limit {MAX_PAYLOAD}"),
            ));
        }
        let mut payload = vec![0u8; payload_len as usize];
        reader.read_exact(&mut payload).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                ProtoError::format(at, "connection closed mid-frame (truncated payload)")
            } else {
                ProtoError::Io(e)
            }
        })?;
        let mut check = header[..9].to_vec();
        check.extend_from_slice(&payload);
        if payload_checksum(&check) != stored_checksum {
            return Err(ProtoError::format(
                at,
                "frame checksum mismatch (corrupted header or payload)",
            ));
        }
        *offset = at + FRAME_HEADER_LEN as u64 + u64::from(payload_len);
        Ok(Frame { kind, aux, payload })
    }
}

// ---------------------------------------------------------------------------
// Trace-session chunk payload: symbol definitions + .sgtr event records
// ---------------------------------------------------------------------------

/// Payload tag for a symbol definition inside a trace chunk. The
/// `.sgtr` event tags start at 1, so 0 is free.
const TAG_SYMDEF: u8 = 0;

/// One record of a trace-session chunk payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// Defines function id `id` as `name`. Ids must arrive in interning
    /// order (0, 1, 2, …) so the server's sequential
    /// [`SymbolTable`](sigil_trace::SymbolTable) reproduces them.
    Sym {
        /// The function id being defined.
        id: u32,
        /// Its symbol name.
        name: String,
    },
    /// One runtime event, encoded exactly as in `.sgtr` containers.
    Event(RuntimeEvent),
}

/// Encodes trace records as a chunk payload.
pub fn encode_trace_records(records: &[TraceRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(records.len() * 8);
    for record in records {
        match record {
            TraceRecord::Sym { id, name } => {
                out.push(TAG_SYMDEF);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&(name.len() as u32).to_le_bytes());
                out.extend_from_slice(name.as_bytes());
            }
            TraceRecord::Event(event) => {
                sigil_trace::io::write_event(&mut out, *event).expect("writing to a Vec");
            }
        }
    }
    out
}

/// Decodes a trace-session chunk payload of exactly `count` records.
/// `base` is the connection offset of the payload's first byte, so
/// errors locate the damage on the wire.
///
/// # Errors
///
/// Returns a located [`ProtoError`] on malformed records, a count
/// mismatch, or trailing bytes.
pub fn decode_trace_records(
    payload: &[u8],
    count: u32,
    base: u64,
) -> Result<Vec<TraceRecord>, ProtoError> {
    let mut out = Vec::with_capacity(count as usize);
    let mut rest = payload;
    for i in 0..count {
        let at = base + (payload.len() - rest.len()) as u64;
        let locate = |message: String| ProtoError::format(at, format!("record {i}: {message}"));
        let Some((&tag, _)) = rest.split_first() else {
            return Err(locate("truncated payload (missing record)".to_owned()));
        };
        if tag == TAG_SYMDEF {
            rest = &rest[1..];
            if rest.len() < 8 {
                return Err(locate("truncated symbol definition".to_owned()));
            }
            let id = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
            let len = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes")) as usize;
            rest = &rest[8..];
            if len > 1 << 20 {
                return Err(locate(format!("unreasonable symbol length {len}")));
            }
            if rest.len() < len {
                return Err(locate("truncated symbol name".to_owned()));
            }
            let name = std::str::from_utf8(&rest[..len])
                .map_err(|e| locate(format!("bad symbol utf-8: {e}")))?
                .to_owned();
            rest = &rest[len..];
            out.push(TraceRecord::Sym { id, name });
        } else {
            let before = rest;
            let event = sigil_trace::io::read_event(&mut rest).map_err(|e| {
                // `rest` may or may not have advanced; report the record
                // start either way.
                let _ = before;
                locate(e.to_string())
            })?;
            out.push(TraceRecord::Event(event));
        }
    }
    if !rest.is_empty() {
        return Err(ProtoError::format(
            base + (payload.len() - rest.len()) as u64,
            format!(
                "{} trailing payload bytes after the last record",
                rest.len()
            ),
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Control-frame JSON payloads
// ---------------------------------------------------------------------------

/// HELLO payload: what the session streams and how to profile it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Wire-protocol version the client speaks.
    pub version: u32,
    /// Client-chosen session label (shown in STATUS and logs).
    pub name: String,
    /// `"trace"` (runtime events + symbols → full Profile) or
    /// `"events"` (SGEB event records → folds only).
    pub mode: String,
    /// Reuse monitoring (trace mode).
    pub reuse: bool,
    /// Line-granularity shadowing (trace mode).
    pub line_size: Option<u32>,
    /// Shadow-chunk cap (trace mode).
    pub shadow_limit: Option<usize>,
    /// Use LRU eviction instead of FIFO under a shadow limit.
    pub lru: bool,
    /// Record the event file inside the profile (trace mode).
    pub events: bool,
    /// Phase bucket width in retired ops; `None` = phases off (trace
    /// mode) / phase fold off (events mode).
    pub bucket_ops: Option<u64>,
    /// Shadow-memory shards for server-side replay (trace mode).
    pub shards: usize,
}

impl SessionSpec {
    /// A trace-session spec mirroring `config`.
    pub fn trace(name: impl Into<String>, config: SigilConfig) -> SessionSpec {
        SessionSpec {
            version: WIRE_VERSION,
            name: name.into(),
            mode: "trace".to_owned(),
            reuse: config.reuse_mode,
            line_size: config.line_size,
            shadow_limit: config.shadow_chunk_limit,
            lru: config.eviction == EvictionPolicy::Lru,
            events: config.record_events,
            bucket_ops: config.phase_bucket_ops,
            shards: config.shards,
        }
    }

    /// An events-session spec (streaming folds only).
    pub fn events(name: impl Into<String>, bucket_ops: Option<u64>) -> SessionSpec {
        SessionSpec {
            version: WIRE_VERSION,
            name: name.into(),
            mode: "events".to_owned(),
            reuse: false,
            line_size: None,
            shadow_limit: None,
            lru: false,
            events: false,
            bucket_ops,
            shards: 1,
        }
    }

    /// The profiler configuration a trace session runs with.
    pub fn config(&self) -> SigilConfig {
        let mut config = SigilConfig::default();
        if self.reuse {
            config = config.with_reuse_mode();
        }
        if let Some(line_size) = self.line_size {
            config = config.with_line_mode(line_size);
        }
        if let Some(limit) = self.shadow_limit {
            config = config.with_shadow_limit(limit);
        }
        if self.lru {
            config = config.with_eviction(EvictionPolicy::Lru);
        }
        if self.events {
            config = config.with_events();
        }
        if let Some(bucket_ops) = self.bucket_ops {
            config = config.with_phases(bucket_ops);
        }
        config.with_shards(self.shards)
    }
}

/// WELCOME payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Welcome {
    /// Wire-protocol version the server speaks.
    pub version: u32,
    /// Server-assigned session id.
    pub session: u64,
    /// Initial credit window: how many CHUNK frames the client may have
    /// in flight before waiting for CREDIT grants.
    pub credits: u32,
}

/// STATUS_OK payload: ingest counters, readable while chunks stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatusInfo {
    /// Session id.
    pub session: u64,
    /// Session label from HELLO.
    pub name: String,
    /// Session mode from HELLO.
    pub mode: String,
    /// Chunks received (enqueued) so far.
    pub chunks: u64,
    /// Chunks fully processed so far.
    pub processed: u64,
    /// Records processed so far.
    pub records: u64,
}

/// SNAPSHOT_OK payload: point-in-time aggregates of the in-progress
/// session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotInfo {
    /// Records processed at snapshot time.
    pub records: u64,
    /// Phase profile built so far (`None` if phases are off, or in
    /// sharded trace sessions where phases assemble only at finish).
    pub phases: Option<PhaseProfile>,
    /// Critical-path summary of the records so far (events mode only;
    /// `None` when the fold cannot finalize mid-stream).
    pub critpath: Option<PathSummary>,
}

/// RESULT payload: the finished session's aggregates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionResult {
    /// Session mode.
    pub mode: String,
    /// Total records ingested.
    pub records: u64,
    /// The full profile (trace mode).
    pub profile: Option<Profile>,
    /// Phase-sliced profile (trace mode: copied out of the profile;
    /// events mode: the PhaseFold result).
    pub phases: Option<PhaseProfile>,
    /// Critical-path summary (trace mode: folded over the recorded
    /// event file when event recording was on; events mode: the
    /// CriticalPathFold result).
    pub critpath: Option<PathSummary>,
    /// Communicating contexts in the event CDFG (events mode).
    pub cdfg_contexts: Option<u64>,
    /// Edges in the event CDFG (events mode).
    pub cdfg_edges: Option<u64>,
    /// Total compute ops (events mode).
    pub compute_ops: Option<u64>,
    /// Total transfer bytes (events mode).
    pub transfer_bytes: Option<u64>,
}

/// ERROR payload: why the session died, located on the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireError {
    /// Connection byte offset associated with the failure (0 when the
    /// failure is not tied to a wire position).
    pub offset: u64,
    /// Human-readable description.
    pub message: String,
}

/// SHUTDOWN_OK payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShutdownSummary {
    /// Whether all sessions drained before the acknowledgement.
    pub drained: bool,
    /// Sessions still active at acknowledgement time.
    pub active: u64,
    /// Sessions opened over the server's lifetime.
    pub opened: u64,
}

/// Serializes a control payload as JSON bytes.
pub(crate) fn to_json_payload<T: Serialize>(value: &T) -> Vec<u8> {
    serde_json::to_string(value)
        .expect("control payloads serialize")
        .into_bytes()
}

/// Parses a control payload, locating failures at the frame offset.
pub(crate) fn from_json_payload<T: Deserialize>(
    payload: &[u8],
    at: u64,
    what: &str,
) -> Result<T, ProtoError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| ProtoError::format(at, format!("{what} payload is not utf-8: {e}")))?;
    serde_json::from_str(text)
        .map_err(|e| ProtoError::format(at, format!("bad {what} payload: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::{FunctionId, MemAccess, OpClass};

    #[test]
    fn frame_round_trips() {
        let frame = Frame {
            kind: FrameKind::Chunk,
            aux: 3,
            payload: vec![1, 2, 3, 4, 5],
        };
        let bytes = frame.encode();
        let mut offset = 0u64;
        let back = Frame::read_from(&mut bytes.as_slice(), &mut offset).expect("decodes");
        assert_eq!(back, frame);
        assert_eq!(offset, bytes.len() as u64);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn corrupted_frame_is_located() {
        let frame = Frame {
            kind: FrameKind::Chunk,
            aux: 1,
            payload: vec![42; 16],
        };
        let mut bytes = frame.encode();
        bytes[2] ^= 0x10; // flip a bit inside aux: covered by the checksum
        let mut offset = 100u64;
        let err = Frame::read_from(&mut bytes.as_slice(), &mut offset).expect_err("must fail");
        let ProtoError::Format {
            offset: at,
            message,
        } = err
        else {
            panic!("expected format error");
        };
        assert_eq!(at, 100);
        assert!(message.contains("checksum"), "{message}");
    }

    #[test]
    fn trace_records_round_trip() {
        let records = vec![
            TraceRecord::Sym {
                id: 0,
                name: "main".to_owned(),
            },
            TraceRecord::Event(RuntimeEvent::Call {
                callee: FunctionId::from_raw(0),
            }),
            TraceRecord::Event(RuntimeEvent::Write {
                access: MemAccess::new(0x100, 8),
            }),
            TraceRecord::Event(RuntimeEvent::Op {
                class: OpClass::IntArith,
                count: 7,
            }),
            TraceRecord::Event(RuntimeEvent::Return),
        ];
        let payload = encode_trace_records(&records);
        let back = decode_trace_records(&payload, records.len() as u32, 0).expect("decodes");
        assert_eq!(back, records);
        // Wrong counts and truncations are located errors.
        assert!(decode_trace_records(&payload, records.len() as u32 + 1, 0).is_err());
        assert!(decode_trace_records(&payload, records.len() as u32 - 1, 0).is_err());
        assert!(
            decode_trace_records(&payload[..payload.len() - 1], records.len() as u32, 0).is_err()
        );
    }

    #[test]
    fn session_spec_config_round_trips() {
        let config = SigilConfig::default()
            .with_reuse_mode()
            .with_line_mode(64)
            .with_shadow_limit(8)
            .with_eviction(EvictionPolicy::Lru)
            .with_events()
            .with_phases(500)
            .with_shards(4);
        let spec = SessionSpec::trace("t", config);
        let back = spec.config();
        assert_eq!(back.reuse_mode, config.reuse_mode);
        assert_eq!(back.line_size, config.line_size);
        assert_eq!(back.shadow_chunk_limit, config.shadow_chunk_limit);
        assert_eq!(back.eviction, config.eviction);
        assert_eq!(back.record_events, config.record_events);
        assert_eq!(back.phase_bucket_ops, config.phase_bucket_ops);
        assert_eq!(back.shards, config.shards);
        // And survives the JSON wire encoding.
        let json = to_json_payload(&spec);
        let parsed: SessionSpec = from_json_payload(&json, 0, "HELLO").expect("parses");
        assert_eq!(parsed.config().shards, 4);
        assert_eq!(parsed.mode, "trace");
    }
}
