//! A blocking client for the `sigil-serve` protocol: opens a session,
//! streams chunks under the server's credit window, and runs the
//! STATUS/SNAPSHOT/FINISH queries.

use std::fmt;
use std::io;
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use sigil_core::events_bin::{encode_chunk_payload, DEFAULT_CHUNK_RECORDS};
use sigil_core::EventRecord;
use sigil_trace::{RuntimeEvent, SymbolTable};

use crate::proto::{
    encode_trace_records, from_json_payload, to_json_payload, Frame, FrameKind, ProtoError,
    SessionResult, SessionSpec, ShutdownSummary, SnapshotInfo, StatusInfo, TraceRecord, Welcome,
    WireError,
};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure.
    Io(io::Error),
    /// The server's bytes were malformed.
    Proto(ProtoError),
    /// The server reported a session error, located on the wire.
    Server {
        /// Connection byte offset the server associated with the failure.
        offset: u64,
        /// The server's description.
        message: String,
    },
    /// The server sent a frame the protocol does not allow here.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Proto(e) => write!(f, "client decode error: {e}"),
            ClientError::Server { offset, message } => {
                write!(f, "server error at connection offset {offset}: {message}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected server frame: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(io) => ClientError::Io(io),
            other => ClientError::Proto(other),
        }
    }
}

/// The client side of a connection, TCP or Unix.
enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Connects to `address` (a path containing `/` means Unix socket).
fn connect_stream(address: &str) -> io::Result<Stream> {
    if address.contains('/') {
        Ok(Stream::Unix(UnixStream::connect(address)?))
    } else {
        Ok(Stream::Tcp(TcpStream::connect(address)?))
    }
}

/// One open profile session.
pub struct Client {
    stream: Stream,
    /// Connection offset of the next unread server byte (locates decode
    /// errors in the server's responses).
    read_offset: u64,
    /// Server-assigned session id.
    session: u64,
    /// CHUNK frames we may still send before waiting for CREDIT.
    credits: u32,
    /// Times a send had to block on the credit window.
    credit_waits: u64,
    /// Records per CHUNK when streaming whole traces or event files.
    chunk_records: usize,
}

impl Client {
    /// Opens a session: connects, sends HELLO, waits for WELCOME.
    ///
    /// # Errors
    ///
    /// Fails on connection errors or if the server rejects the spec.
    pub fn connect(address: &str, spec: &SessionSpec) -> Result<Client, ClientError> {
        let mut client = Client {
            stream: connect_stream(address)?,
            read_offset: 0,
            session: 0,
            credits: 0,
            credit_waits: 0,
            chunk_records: DEFAULT_CHUNK_RECORDS,
        };
        let hello = Frame {
            kind: FrameKind::Hello,
            aux: 0,
            payload: to_json_payload(spec),
        };
        hello.write_to(&mut client.stream)?;
        let frame = client.wait_for(FrameKind::Welcome)?;
        let welcome: Welcome = from_json_payload(&frame.payload, client.read_offset, "WELCOME")?;
        client.session = welcome.session;
        client.credits = welcome.credits.max(1);
        Ok(client)
    }

    /// The server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// How many sends had to block waiting for a CREDIT grant — a
    /// direct observation of backpressure engaging.
    pub fn credit_waits(&self) -> u64 {
        self.credit_waits
    }

    /// Overrides the records-per-chunk used by the streaming helpers.
    pub fn set_chunk_records(&mut self, records: usize) {
        self.chunk_records = records.max(1);
    }

    /// Reads one frame, absorbing CREDIT grants and raising server
    /// ERROR frames, until a frame of `kind` arrives.
    fn wait_for(&mut self, kind: FrameKind) -> Result<Frame, ClientError> {
        loop {
            let frame = Frame::read_from(&mut self.stream, &mut self.read_offset)?;
            match frame.kind {
                FrameKind::Credit => self.credits += frame.aux,
                FrameKind::Error => return Err(self.server_error(&frame)),
                got if got == kind => return Ok(frame),
                other => {
                    return Err(ClientError::Unexpected(format!(
                        "waiting for {kind:?}, got {other:?}"
                    )))
                }
            }
        }
    }

    fn server_error(&self, frame: &Frame) -> ClientError {
        match from_json_payload::<WireError>(&frame.payload, self.read_offset, "ERROR") {
            Ok(err) => ClientError::Server {
                offset: err.offset,
                message: err.message,
            },
            Err(e) => e.into(),
        }
    }

    /// Sends one raw CHUNK frame, blocking on the credit window first.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or a server-reported session error.
    pub fn send_chunk(&mut self, payload: Vec<u8>, records: u32) -> Result<(), ClientError> {
        if self.credits == 0 {
            self.credit_waits += 1;
            while self.credits == 0 {
                let frame = Frame::read_from(&mut self.stream, &mut self.read_offset)?;
                match frame.kind {
                    FrameKind::Credit => self.credits += frame.aux,
                    FrameKind::Error => return Err(self.server_error(&frame)),
                    other => {
                        return Err(ClientError::Unexpected(format!(
                            "waiting for CREDIT, got {other:?}"
                        )))
                    }
                }
            }
        }
        let frame = Frame {
            kind: FrameKind::Chunk,
            aux: records,
            payload,
        };
        frame.write_to(&mut self.stream)?;
        self.credits -= 1;
        Ok(())
    }

    /// Streams a whole trace — symbol table first, then every event —
    /// as trace-mode chunks.
    ///
    /// # Errors
    ///
    /// Propagates [`send_chunk`](Client::send_chunk) failures.
    pub fn stream_trace(
        &mut self,
        symbols: &SymbolTable,
        events: &[RuntimeEvent],
    ) -> Result<(), ClientError> {
        let mut records: Vec<TraceRecord> = Vec::with_capacity(self.chunk_records);
        // Symbol definitions go first, in interning order, so the
        // server's sequential intern reproduces every id.
        for (id, name) in symbols.iter() {
            records.push(TraceRecord::Sym {
                id: id.as_raw(),
                name: name.to_owned(),
            });
            if records.len() >= self.chunk_records {
                self.flush_trace_records(&mut records)?;
            }
        }
        for event in events {
            records.push(TraceRecord::Event(*event));
            if records.len() >= self.chunk_records {
                self.flush_trace_records(&mut records)?;
            }
        }
        self.flush_trace_records(&mut records)
    }

    fn flush_trace_records(&mut self, records: &mut Vec<TraceRecord>) -> Result<(), ClientError> {
        if records.is_empty() {
            return Ok(());
        }
        let payload = encode_trace_records(records);
        let count = records.len() as u32;
        records.clear();
        self.send_chunk(payload, count)
    }

    /// Streams event records as events-mode chunks (the SGEB chunk
    /// payload encoding).
    ///
    /// # Errors
    ///
    /// Propagates [`send_chunk`](Client::send_chunk) failures.
    pub fn stream_events(&mut self, records: &[EventRecord]) -> Result<(), ClientError> {
        for chunk in records.chunks(self.chunk_records) {
            self.send_chunk(encode_chunk_payload(chunk), chunk.len() as u32)?;
        }
        Ok(())
    }

    /// Queries the server's ingest counters (answered without waiting
    /// for queued chunks to drain).
    ///
    /// # Errors
    ///
    /// Fails on socket errors or a server-reported session error.
    pub fn status(&mut self) -> Result<StatusInfo, ClientError> {
        Frame::control(FrameKind::Status).write_to(&mut self.stream)?;
        let frame = self.wait_for(FrameKind::StatusOk)?;
        Ok(from_json_payload(
            &frame.payload,
            self.read_offset,
            "STATUS_OK",
        )?)
    }

    /// Queries a live aggregate snapshot (processed in queue order, so
    /// it reflects every chunk sent before it).
    ///
    /// # Errors
    ///
    /// Fails on socket errors or a server-reported session error.
    pub fn snapshot(&mut self) -> Result<SnapshotInfo, ClientError> {
        Frame::control(FrameKind::Snapshot).write_to(&mut self.stream)?;
        let frame = self.wait_for(FrameKind::SnapshotOk)?;
        Ok(from_json_payload(
            &frame.payload,
            self.read_offset,
            "SNAPSHOT_OK",
        )?)
    }

    /// Ends the stream and collects the finished session's result.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or a server-reported session error.
    pub fn finish(mut self) -> Result<SessionResult, ClientError> {
        Frame::control(FrameKind::Finish).write_to(&mut self.stream)?;
        let frame = self.wait_for(FrameKind::Result)?;
        Ok(from_json_payload(
            &frame.payload,
            self.read_offset,
            "RESULT",
        )?)
    }
}

/// Asks the server at `address` to drain its sessions and shut down.
///
/// # Errors
///
/// Fails on connection errors or a malformed acknowledgement.
pub fn shutdown_server(address: &str) -> Result<ShutdownSummary, ClientError> {
    let mut stream = connect_stream(address)?;
    Frame::control(FrameKind::Shutdown).write_to(&mut stream)?;
    let mut offset = 0u64;
    let frame = Frame::read_from(&mut stream, &mut offset)?;
    if frame.kind != FrameKind::ShutdownOk {
        return Err(ClientError::Unexpected(format!(
            "waiting for SHUTDOWN_OK, got {:?}",
            frame.kind
        )));
    }
    Ok(from_json_payload(&frame.payload, offset, "SHUTDOWN_OK")?)
}
