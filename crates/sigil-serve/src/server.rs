//! The daemon: accept loop, per-session reader/worker threads, bounded
//! ingest queues with credit-based backpressure, and live queries.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use sigil_analysis::streaming::{CriticalPathFold, EventCdfgFold, PhaseFold};
use sigil_core::events_bin::decode_chunk_payload;
use sigil_core::{EventRecord, SigilProfiler};
use sigil_obs::{metrics, obs_info, timeseries};
use sigil_trace::{ExecutionObserver, SymbolTable};

use crate::proto::{
    decode_trace_records, from_json_payload, to_json_payload, Frame, FrameKind, ProtoError,
    SessionResult, SessionSpec, ShutdownSummary, SnapshotInfo, StatusInfo, TraceRecord, Welcome,
    WireError, WIRE_VERSION,
};

/// Ingest-lag histogram bounds, microseconds.
const LAG_BOUNDS_US: &[u64] = &[10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A TCP address like `127.0.0.1:7077`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Listen {
    /// Parses a `--listen` value: anything containing `/` is a Unix
    /// socket path, everything else a TCP address.
    pub fn parse(value: &str) -> Listen {
        if value.contains('/') {
            Listen::Unix(PathBuf::from(value))
        } else {
            Listen::Tcp(value.to_owned())
        }
    }

    /// The string form clients pass to `--connect`.
    pub fn address(&self) -> String {
        match self {
            Listen::Tcp(addr) => addr.clone(),
            Listen::Unix(path) => path.display().to_string(),
        }
    }
}

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Credit window per session: CHUNK frames a client may have in
    /// flight before waiting for CREDIT grants.
    pub credits: u32,
    /// A session whose socket stays silent this long is failed.
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            credits: 8,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// A connected stream, TCP or Unix.
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Conn> {
        Ok(match self {
            Listener::Tcp(l) => Conn::Tcp(l.accept()?.0),
            Listener::Unix(l) => Conn::Unix(l.accept()?.0),
        })
    }
}

/// State shared between the accept loop, sessions, and shutdown.
struct Shared {
    config: ServeConfig,
    address: Listen,
    stop: AtomicBool,
    next_session: AtomicU64,
    opened: AtomicU64,
    active: AtomicU64,
}

impl Shared {
    fn session_started(&self) -> u64 {
        let id = self.next_session.fetch_add(1, Ordering::SeqCst) + 1;
        self.opened.fetch_add(1, Ordering::SeqCst);
        let active = self.active.fetch_add(1, Ordering::SeqCst) + 1;
        metrics::counter("serve.sessions.opened").inc();
        metrics::gauge("serve.sessions.active").set(active as f64);
        timeseries::record_gauge("serve.sessions.active", active as f64);
        id
    }

    fn session_ended(&self, failed: bool) {
        let active = self.active.fetch_sub(1, Ordering::SeqCst) - 1;
        metrics::gauge("serve.sessions.active").set(active as f64);
        timeseries::record_gauge("serve.sessions.active", active as f64);
        if failed {
            metrics::counter("serve.sessions.failed").inc();
        } else {
            metrics::counter("serve.sessions.finished").inc();
        }
    }
}

/// A running daemon. Bind with [`Server::bind`]; stop programmatically
/// with [`Server::stop`] or over the wire with a SHUTDOWN frame.
pub struct Server {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the accept loop.
    ///
    /// Binding `127.0.0.1:0` picks a free port; [`Server::address`]
    /// reports the resolved address.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(listen: Listen, config: ServeConfig) -> io::Result<Server> {
        let (listener, address) = match &listen {
            Listen::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                let local = listener.local_addr()?.to_string();
                (Listener::Tcp(listener), Listen::Tcp(local))
            }
            Listen::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                (Listener::Unix(UnixListener::bind(path)?), listen.clone())
            }
        };
        let shared = Arc::new(Shared {
            config,
            address,
            stop: AtomicBool::new(false),
            next_session: AtomicU64::new(0),
            opened: AtomicU64::new(0),
            active: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("sigil-serve-accept".to_owned())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawning the accept thread");
        obs_info!(
            "serve: listening on {} (credits {}, idle timeout {:?})",
            shared.address.address(),
            config.credits,
            config.idle_timeout
        );
        Ok(Server {
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The resolved listen address (clients pass this to `--connect`).
    pub fn address(&self) -> String {
        self.shared.address.address()
    }

    /// Blocks until the server shuts down (via SHUTDOWN or [`stop`](Server::stop)).
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Requests shutdown and wakes the accept loop. Does not wait for
    /// in-flight sessions; pair with [`wait`](Server::wait).
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        wake_accept(&self.shared.address);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

/// Connects to our own listener so a blocking `accept` returns and the
/// loop can observe the stop flag.
fn wake_accept(address: &Listen) {
    let _ = match address {
        Listen::Tcp(addr) => TcpStream::connect(addr).map(|_| ()),
        Listen::Unix(path) => UnixStream::connect(path).map(|_| ()),
    };
}

fn accept_loop(listener: Listener, shared: Arc<Shared>) {
    loop {
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(_) if shared.stop.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let conn_shared = Arc::clone(&shared);
        let spawned = thread::Builder::new()
            .name("sigil-serve-conn".to_owned())
            .spawn(move || handle_connection(conn, conn_shared));
        if spawned.is_err() {
            // Thread exhaustion: drop the connection; the client sees EOF.
            continue;
        }
    }
    if let Listen::Unix(path) = &shared.address {
        let _ = std::fs::remove_file(path);
    }
    obs_info!("serve: accept loop stopped");
}

/// Sends a frame on a shared writer, ignoring the result (the peer may
/// already be gone when reporting errors).
fn send_frame(writer: &Mutex<Conn>, frame: &Frame) -> io::Result<()> {
    let mut guard = writer.lock().expect("writer lock");
    frame.write_to(&mut *guard)
}

fn send_error(writer: &Mutex<Conn>, offset: u64, message: String) {
    let frame = Frame {
        kind: FrameKind::Error,
        aux: 0,
        payload: to_json_payload(&WireError { offset, message }),
    };
    let _ = send_frame(writer, &frame);
}

/// First frame decides: HELLO opens a session on this connection,
/// SHUTDOWN drains and stops the server.
fn handle_connection(mut conn: Conn, shared: Arc<Shared>) {
    let _ = conn.set_read_timeout(Some(shared.config.idle_timeout));
    let mut offset = 0u64;
    let first = match Frame::read_from(&mut conn, &mut offset) {
        Ok(frame) => frame,
        Err(_) => return, // wake-up probe or dead client; nothing to answer
    };
    match first.kind {
        FrameKind::Shutdown => handle_shutdown(conn, &shared),
        FrameKind::Hello => {
            let writer = match conn.try_clone() {
                Ok(clone) => Arc::new(Mutex::new(clone)),
                Err(_) => return,
            };
            let spec: SessionSpec = match from_json_payload(&first.payload, 0, "HELLO") {
                Ok(spec) => spec,
                Err(e) => {
                    send_error(&writer, 0, e.to_string());
                    return;
                }
            };
            if spec.version != WIRE_VERSION {
                send_error(
                    &writer,
                    0,
                    format!(
                        "wire version mismatch: client speaks {}, server speaks {WIRE_VERSION}",
                        spec.version
                    ),
                );
                return;
            }
            if spec.mode != "trace" && spec.mode != "events" {
                send_error(
                    &writer,
                    0,
                    format!(
                        "unknown session mode {:?} (expected \"trace\" or \"events\")",
                        spec.mode
                    ),
                );
                return;
            }
            let session = shared.session_started();
            let failed = run_session(conn, writer, spec, session, &shared, offset);
            shared.session_ended(failed.is_err());
            if let Err(message) = failed {
                obs_info!("serve: session {session} failed: {message}");
            }
        }
        other => {
            let writer = Arc::new(Mutex::new(conn));
            send_error(
                &writer,
                0,
                format!("expected HELLO or SHUTDOWN as the first frame, got {other:?}"),
            );
        }
    }
}

fn handle_shutdown(mut conn: Conn, shared: &Arc<Shared>) {
    shared.stop.store(true, Ordering::SeqCst);
    obs_info!("serve: shutdown requested, draining sessions");
    // Wait (bounded) for in-flight sessions to finish.
    let deadline = Instant::now() + shared.config.idle_timeout + Duration::from_secs(5);
    while shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
    let active = shared.active.load(Ordering::SeqCst);
    let summary = ShutdownSummary {
        drained: active == 0,
        active,
        opened: shared.opened.load(Ordering::SeqCst),
    };
    let frame = Frame {
        kind: FrameKind::ShutdownOk,
        aux: 0,
        payload: to_json_payload(&summary),
    };
    let _ = frame.write_to(&mut conn);
    wake_accept(&shared.address);
}

/// Live ingest counters, shared between reader (STATUS) and worker.
struct SessionCounters {
    chunks: AtomicU64,
    processed: AtomicU64,
    records: AtomicU64,
}

/// Work queued from the reader to the worker.
enum WorkItem {
    Chunk {
        payload: Vec<u8>,
        records: u32,
        offset: u64,
        enqueued: Instant,
    },
    Snapshot,
    Finish,
}

/// Events-mode aggregation: the streaming folds plus running totals.
struct EventFolds {
    phases: Option<PhaseFold>,
    critpath: CriticalPathFold,
    cdfg: EventCdfgFold,
    compute_ops: u64,
    transfer_bytes: u64,
}

/// Per-session aggregation state: the same folds and profiler the batch
/// pipeline uses, fed incrementally. Both payloads are boxed — the enum
/// moves between threads, and the profiler and fold state are large.
enum SessionState {
    Trace {
        profiler: Box<SigilProfiler>,
        symbols: SymbolTable,
    },
    Events(Box<EventFolds>),
}

/// Runs one session to completion. Returns `Err(reason)` if the session
/// failed (protocol error, decode error, disconnect, timeout).
fn run_session(
    mut conn: Conn,
    writer: Arc<Mutex<Conn>>,
    spec: SessionSpec,
    session: u64,
    shared: &Arc<Shared>,
    mut offset: u64,
) -> Result<(), String> {
    let credits = shared.config.credits.max(1);
    let welcome = Frame {
        kind: FrameKind::Welcome,
        aux: 0,
        payload: to_json_payload(&Welcome {
            version: WIRE_VERSION,
            session,
            credits,
        }),
    };
    send_frame(&writer, &welcome).map_err(|e| format!("sending WELCOME: {e}"))?;
    obs_info!(
        "serve: session {session} opened ({} mode, name {:?})",
        spec.mode,
        spec.name
    );

    let counters = Arc::new(SessionCounters {
        chunks: AtomicU64::new(0),
        processed: AtomicU64::new(0),
        records: AtomicU64::new(0),
    });
    // Slack above the credit window lets SNAPSHOT/FINISH queue behind a
    // full window of chunks without blocking the reader; credit
    // violations are detected on the counters, not on queue capacity.
    let (sender, receiver) = mpsc::sync_channel::<WorkItem>(credits as usize + 4);

    let state = if spec.mode == "trace" {
        SessionState::Trace {
            profiler: Box::new(SigilProfiler::new(spec.config())),
            symbols: SymbolTable::default(),
        }
    } else {
        SessionState::Events(Box::new(EventFolds {
            phases: spec.bucket_ops.map(PhaseFold::new),
            critpath: CriticalPathFold::new(),
            cdfg: EventCdfgFold::new(),
            compute_ops: 0,
            transfer_bytes: 0,
        }))
    };

    let worker_writer = Arc::clone(&writer);
    let worker_counters = Arc::clone(&counters);
    let mode = spec.mode.clone();
    let worker = thread::Builder::new()
        .name(format!("sigil-serve-s{session}"))
        .spawn(move || {
            session_worker(
                receiver,
                state,
                worker_writer,
                worker_counters,
                session,
                mode,
            )
        })
        .map_err(|e| format!("spawning session worker: {e}"))?;

    let read_result = session_read_loop(
        &mut conn,
        &writer,
        &sender,
        &counters,
        credits,
        &mut offset,
        (session, &spec),
    );
    // Dropping the sender lets the worker drain and exit even when the
    // reader bailed out early.
    drop(sender);
    let worker_result = worker
        .join()
        .unwrap_or_else(|_| Err("worker panicked".to_owned()));
    match (read_result, worker_result) {
        (Ok(()), Ok(finished)) => {
            if finished {
                Ok(())
            } else {
                let message = "connection closed before FINISH".to_owned();
                send_error(&writer, offset, message.clone());
                Err(message)
            }
        }
        (Err(e), _) => Err(e),
        (Ok(()), Err(e)) => Err(e),
    }
}

/// Parses frames until FINISH is enqueued, EOF, or a protocol error.
/// STATUS is answered inline from the shared counters; chunk and
/// snapshot work is queued in arrival order.
fn session_read_loop(
    conn: &mut Conn,
    writer: &Mutex<Conn>,
    sender: &SyncSender<WorkItem>,
    counters: &SessionCounters,
    credits: u32,
    offset: &mut u64,
    identity: (u64, &SessionSpec),
) -> Result<(), String> {
    loop {
        let frame = match Frame::read_from(conn, offset) {
            Ok(frame) => frame,
            Err(ProtoError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                let message = format!("session idle timeout at connection offset {offset}");
                send_error(writer, *offset, message.clone());
                return Err(message);
            }
            Err(e) => {
                let at = match &e {
                    ProtoError::Format { offset, .. } => *offset,
                    ProtoError::Io(_) => *offset,
                };
                let message = e.to_string();
                send_error(writer, at, message.clone());
                return Err(message);
            }
        };
        match frame.kind {
            FrameKind::Chunk => {
                let outstanding = counters.chunks.load(Ordering::SeqCst)
                    - counters.processed.load(Ordering::SeqCst);
                if outstanding >= u64::from(credits) {
                    let message = format!(
                        "credit violation: {outstanding} unprocessed chunks with a window of {credits}"
                    );
                    send_error(writer, *offset, message.clone());
                    return Err(message);
                }
                counters.chunks.fetch_add(1, Ordering::SeqCst);
                let chunk_offset = *offset - frame.payload.len() as u64;
                let item = WorkItem::Chunk {
                    payload: frame.payload,
                    records: frame.aux,
                    offset: chunk_offset,
                    enqueued: Instant::now(),
                };
                if sender.send(item).is_err() {
                    // Worker already died; it reported its own error.
                    return Ok(());
                }
            }
            FrameKind::Status => {
                let info = StatusInfo {
                    session: identity.0,
                    name: identity.1.name.clone(),
                    mode: identity.1.mode.clone(),
                    chunks: counters.chunks.load(Ordering::SeqCst),
                    processed: counters.processed.load(Ordering::SeqCst),
                    records: counters.records.load(Ordering::SeqCst),
                };
                let reply = Frame {
                    kind: FrameKind::StatusOk,
                    aux: 0,
                    payload: to_json_payload(&info),
                };
                if send_frame(writer, &reply).is_err() {
                    return Err("client went away while answering STATUS".to_owned());
                }
            }
            FrameKind::Snapshot => {
                if sender.send(WorkItem::Snapshot).is_err() {
                    return Ok(());
                }
            }
            FrameKind::Finish => {
                let _ = sender.send(WorkItem::Finish);
                return Ok(());
            }
            other => {
                let message = format!("unexpected frame {other:?} inside a session");
                send_error(writer, *offset, message.clone());
                return Err(message);
            }
        }
    }
}

/// Decodes queued chunks into the session state, grants one CREDIT per
/// processed chunk, and finalizes on FINISH. Returns `Ok(true)` when a
/// RESULT was sent, `Ok(false)` on a clean early stop (reader closed
/// the queue before FINISH).
fn session_worker(
    receiver: Receiver<WorkItem>,
    mut state: SessionState,
    writer: Arc<Mutex<Conn>>,
    counters: Arc<SessionCounters>,
    session: u64,
    mode: String,
) -> Result<bool, String> {
    let lag = metrics::histogram("serve.ingest_lag_us", LAG_BOUNDS_US);
    let session_records = format!("serve.session.{session}.records");
    let session_chunks = format!("serve.session.{session}.chunks");
    while let Ok(item) = receiver.recv() {
        match item {
            WorkItem::Chunk {
                payload,
                records,
                offset,
                enqueued,
            } => {
                let lag_us = enqueued.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                lag.observe(lag_us);
                timeseries::record_gauge("serve.ingest_lag_us", lag_us as f64);
                let fed = feed_chunk(&mut state, &payload, records, offset).map_err(|e| {
                    let message = e.to_string();
                    send_error(&writer, chunk_error_offset(&e, offset), message.clone());
                    message
                })?;
                counters.records.fetch_add(fed, Ordering::SeqCst);
                counters.processed.fetch_add(1, Ordering::SeqCst);
                metrics::counter("serve.chunks").inc();
                metrics::counter("serve.records").add(fed);
                metrics::counter("serve.bytes").add(payload.len() as u64);
                metrics::counter(&session_records).add(fed);
                metrics::counter(&session_chunks).inc();
                let credit = Frame {
                    kind: FrameKind::Credit,
                    aux: 1,
                    payload: Vec::new(),
                };
                if send_frame(&writer, &credit).is_err() {
                    return Err("client went away while granting credit".to_owned());
                }
            }
            WorkItem::Snapshot => {
                let info = snapshot(&state, counters.records.load(Ordering::SeqCst));
                let reply = Frame {
                    kind: FrameKind::SnapshotOk,
                    aux: 0,
                    payload: to_json_payload(&info),
                };
                if send_frame(&writer, &reply).is_err() {
                    return Err("client went away while answering SNAPSHOT".to_owned());
                }
            }
            WorkItem::Finish => {
                let records = counters.records.load(Ordering::SeqCst);
                let result = finalize(state, mode, records);
                let reply = Frame {
                    kind: FrameKind::Result,
                    aux: 0,
                    payload: to_json_payload(&result),
                };
                send_frame(&writer, &reply).map_err(|e| format!("sending RESULT: {e}"))?;
                obs_info!("serve: session {session} finished ({records} records)");
                return Ok(true);
            }
        }
    }
    Ok(false)
}

fn chunk_error_offset(error: &ProtoError, fallback: u64) -> u64 {
    match error {
        ProtoError::Format { offset, .. } => *offset,
        ProtoError::Io(_) => fallback,
    }
}

/// Decodes one chunk payload into the session state. Returns the number
/// of records fed.
fn feed_chunk(
    state: &mut SessionState,
    payload: &[u8],
    records: u32,
    offset: u64,
) -> Result<u64, ProtoError> {
    match state {
        SessionState::Trace { profiler, symbols } => {
            let decoded = decode_trace_records(payload, records, offset)?;
            let mut fed = 0u64;
            for record in decoded {
                match record {
                    TraceRecord::Sym { id, name } => {
                        let assigned = symbols.intern(&name);
                        if assigned.as_raw() != id {
                            return Err(ProtoError::format(
                                offset,
                                format!(
                                    "symbol {name:?} declared id {id} but interned as {}",
                                    assigned.as_raw()
                                ),
                            ));
                        }
                    }
                    TraceRecord::Event(event) => {
                        profiler.on_event(event);
                        fed += 1;
                    }
                }
            }
            Ok(fed)
        }
        SessionState::Events(folds) => {
            let EventFolds {
                phases,
                critpath,
                cdfg,
                compute_ops,
                transfer_bytes,
            } = folds.as_mut();
            let decoded = decode_chunk_payload(payload, records).map_err(|e| match e {
                sigil_core::events_bin::BinError::Io(io) => ProtoError::Io(io),
                sigil_core::events_bin::BinError::Format { message, .. } => {
                    ProtoError::format(offset, message)
                }
            })?;
            for record in &decoded {
                if let Some(fold) = phases.as_mut() {
                    fold.push(record);
                }
                critpath.push(record);
                cdfg.push(record);
                match record {
                    EventRecord::Compute { ops, .. } => *compute_ops += ops,
                    EventRecord::Transfer { bytes, .. } => *transfer_bytes += bytes,
                    EventRecord::Call { .. } => {}
                }
            }
            Ok(decoded.len() as u64)
        }
    }
}

/// Point-in-time aggregates for SNAPSHOT.
fn snapshot(state: &SessionState, records: u64) -> SnapshotInfo {
    match state {
        SessionState::Trace { profiler, .. } => SnapshotInfo {
            records,
            phases: profiler.phase_snapshot(),
            critpath: None,
        },
        SessionState::Events(folds) => SnapshotInfo {
            records,
            phases: folds.phases.clone().map(PhaseFold::finish),
            critpath: folds.critpath.clone().finish().ok(),
        },
    }
}

/// Finalizes the session exactly as the batch pipeline would: trace
/// sessions run `on_finish` + `into_profile`, events sessions finish the
/// three folds.
fn finalize(state: SessionState, mode: String, records: u64) -> SessionResult {
    match state {
        SessionState::Trace {
            mut profiler,
            symbols,
        } => {
            profiler.on_finish();
            let profile = profiler.into_profile(symbols);
            let critpath = profile.events.as_ref().and_then(|events| {
                let mut fold = CriticalPathFold::new();
                fold.extend(events.records());
                fold.finish().ok()
            });
            SessionResult {
                mode,
                records,
                phases: profile.phases.clone(),
                critpath,
                profile: Some(profile),
                cdfg_contexts: None,
                cdfg_edges: None,
                compute_ops: None,
                transfer_bytes: None,
            }
        }
        SessionState::Events(folds) => {
            let EventFolds {
                phases,
                critpath,
                cdfg,
                compute_ops,
                transfer_bytes,
            } = *folds;
            let cdfg = cdfg.finish();
            SessionResult {
                mode,
                records,
                profile: None,
                phases: phases.map(PhaseFold::finish),
                critpath: critpath.finish().ok(),
                cdfg_contexts: Some(cdfg.len() as u64),
                cdfg_edges: Some(cdfg.edges().len() as u64),
                compute_ops: Some(compute_ops),
                transfer_bytes: Some(transfer_bytes),
            }
        }
    }
}
