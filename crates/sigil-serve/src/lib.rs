//! `sigil-serve` — a concurrent trace-ingestion daemon.
//!
//! The paper computes communication profiles offline over recorded
//! traces; the production north-star is a long-running service ingesting
//! many streams at once. This crate is that server: `sigil serve`
//! accepts any number of concurrent *profile sessions* over a
//! length-framed protocol whose data payloads reuse the existing binary
//! encodings — the SGEB chunk payload of
//! [`sigil_core::events_bin`] for event-record sessions, and the `.sgtr`
//! per-event encoding of [`sigil_trace::io`] for full trace sessions.
//!
//! # Architecture
//!
//! ```text
//! client ──frames──▶ reader thread ──bounded queue──▶ worker thread
//!                      │   ▲                             │
//!                      │   └──────── CREDIT (aux=1) ◀────┤ per processed chunk
//!                      └ STATUS answered inline          └ folds / profiler
//! ```
//!
//! One connection is one session. Each session runs two threads: a
//! *reader* that parses frames and enqueues chunk work into a bounded
//! queue, and a *worker* that decodes payloads and feeds them through
//! the session's aggregation state — the streaming folds
//! ([`PhaseFold`](sigil_analysis::streaming::PhaseFold),
//! [`EventCdfgFold`](sigil_analysis::streaming::EventCdfgFold),
//! [`CriticalPathFold`](sigil_analysis::streaming::CriticalPathFold))
//! for event-record sessions, or an incremental
//! [`SigilProfiler`](sigil_core::SigilProfiler) (the shadow/profile
//! aggregator) for trace sessions. The queue bound *is* the credit
//! window: the server grants the client `credits` chunk tokens up
//! front and returns one CREDIT frame per chunk processed, so a slow
//! consumer throttles its producer instead of buffering unboundedly.
//!
//! Sessions are isolated: each owns its profiler/folds, its queue, and
//! its per-session metrics; a protocol error or disconnect kills only
//! the offending session's threads and is reported with a located
//! error, while sibling sessions and the accept loop keep running.
//!
//! The online results are proven equal to the batch pipeline by the
//! `sigil-oracle` server axis: every golden workload and generated seed
//! is replayed both through `sigil profile` and through a real socket
//! into this daemon, and the finished Profile/phases/critpath must be
//! byte-identical.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{shutdown_server, Client, ClientError};
pub use proto::{
    decode_trace_records, encode_trace_records, Frame, FrameKind, ProtoError, SessionResult,
    SessionSpec, ShutdownSummary, SnapshotInfo, StatusInfo, TraceRecord, Welcome, WireError,
    FRAME_HEADER_LEN, WIRE_VERSION,
};
pub use server::{Listen, ServeConfig, Server};
