//! Round-trip and robustness properties of the `sigil-serve` wire
//! protocol, mirroring the contract the repo's event formats already
//! hold: encode → decode → encode must be byte-identical, arbitrary
//! byte soup must never panic, and truncated or bit-flipped frames must
//! fail with an error located at the frame's connection offset.
//!
//! The frame checksum covers the kind/aux/length header prefix *and*
//! the payload, so — unlike the advisory fields of `.evb` files — every
//! single-bit flip anywhere in a frame must be *detected*, not merely
//! harmless.

use proptest::prelude::*;
use sigil_serve::{
    decode_trace_records, encode_trace_records, Frame, FrameKind, ProtoError, TraceRecord,
    FRAME_HEADER_LEN,
};
use sigil_trace::{FunctionId, MemAccess, OpClass, RuntimeEvent, ThreadId};

fn kind_strategy() -> impl Strategy<Value = FrameKind> {
    prop_oneof![
        Just(FrameKind::Hello),
        Just(FrameKind::Welcome),
        Just(FrameKind::Chunk),
        Just(FrameKind::Credit),
        Just(FrameKind::Status),
        Just(FrameKind::StatusOk),
        Just(FrameKind::Snapshot),
        Just(FrameKind::SnapshotOk),
        Just(FrameKind::Finish),
        Just(FrameKind::Result),
        Just(FrameKind::Error),
        Just(FrameKind::Shutdown),
        Just(FrameKind::ShutdownOk),
    ]
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        kind_strategy(),
        any::<u32>(),
        prop::collection::vec(any::<u8>(), 0..200),
    )
        .prop_map(|(kind, aux, payload)| Frame { kind, aux, payload })
}

fn event_strategy() -> impl Strategy<Value = RuntimeEvent> {
    let access = (any::<u64>(), 1u32..256).prop_map(|(addr, size)| MemAccess::new(addr, size));
    prop_oneof![
        (0u32..64).prop_map(|id| RuntimeEvent::Call {
            callee: FunctionId::from_raw(id)
        }),
        Just(RuntimeEvent::Return),
        access
            .clone()
            .prop_map(|access| RuntimeEvent::Read { access }),
        access.prop_map(|access| RuntimeEvent::Write { access }),
        (
            prop_oneof![
                Just(OpClass::IntArith),
                Just(OpClass::IntMulDiv),
                Just(OpClass::FloatArith),
                Just(OpClass::Agu)
            ],
            1u32..1 << 20
        )
            .prop_map(|(class, count)| RuntimeEvent::Op { class, count }),
        (any::<u64>(), any::<bool>())
            .prop_map(|(site, taken)| RuntimeEvent::Branch { site, taken }),
        (0u32..64).prop_map(|id| RuntimeEvent::SyscallEnter {
            name: FunctionId::from_raw(id)
        }),
        Just(RuntimeEvent::SyscallExit),
        (0u32..8).prop_map(|t| RuntimeEvent::ThreadSwitch {
            thread: ThreadId::from_raw(t)
        }),
    ]
}

/// Trace-chunk records with symbol definitions in interning order,
/// the way `Client::stream_trace` produces them.
fn trace_records_strategy() -> impl Strategy<Value = Vec<TraceRecord>> {
    (
        prop::collection::vec(0u64..1_000_000, 0..8),
        prop::collection::vec(event_strategy(), 0..60),
    )
        .prop_map(|(names, events)| {
            let mut out: Vec<TraceRecord> = names
                .into_iter()
                .enumerate()
                .map(|(id, tag)| TraceRecord::Sym {
                    id: id as u32,
                    name: format!("sym_{tag}::f{id}"),
                })
                .collect();
            out.extend(events.into_iter().map(TraceRecord::Event));
            out
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode → read_from → encode is byte-identical for any frame, and
    /// the connection offset advances by exactly the frame's length.
    #[test]
    fn frame_round_trip_is_byte_identical(frame in frame_strategy(), base in any::<u32>()) {
        let bytes = frame.encode();
        let mut offset = u64::from(base);
        let decoded = Frame::read_from(&mut bytes.as_slice(), &mut offset)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&decoded, &frame, "decode lost information");
        prop_assert_eq!(decoded.encode(), bytes, "re-encode not byte-identical");
        prop_assert_eq!(offset, u64::from(base) + FRAME_HEADER_LEN as u64 + frame.payload.len() as u64);
    }

    /// A stream of frames decodes back frame-for-frame, with offsets
    /// tracking the exact byte position of every frame boundary.
    #[test]
    fn frame_stream_round_trips(frames in prop::collection::vec(frame_strategy(), 1..8)) {
        let mut bytes = Vec::new();
        for frame in &frames {
            bytes.extend_from_slice(&frame.encode());
        }
        let mut cursor = bytes.as_slice();
        let mut offset = 0u64;
        for (i, expected) in frames.iter().enumerate() {
            let decoded = Frame::read_from(&mut cursor, &mut offset)
                .map_err(|e| TestCaseError::fail(format!("frame {i}: {e}")))?;
            prop_assert_eq!(&decoded, expected, "frame {} diverged", i);
        }
        prop_assert_eq!(offset, bytes.len() as u64, "offsets drifted off the byte stream");
    }

    /// `read_from` on arbitrary byte soup returns `Ok` or an error — it
    /// never panics, and format errors are located at the frame start.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let mut offset = 7u64;
        match Frame::read_from(&mut bytes.as_slice(), &mut offset) {
            Ok(frame) => prop_assert!(FRAME_HEADER_LEN + frame.payload.len() <= bytes.len()),
            Err(ProtoError::Format { offset: at, message }) => {
                prop_assert_eq!(at, 7, "format errors locate the frame start");
                prop_assert!(!message.is_empty());
            }
            Err(ProtoError::Io(_)) => {}
        }
    }

    /// Every strict truncation of a valid frame fails with an error
    /// located at the frame's start — a prefix never decodes cleanly.
    #[test]
    fn truncation_is_always_detected(frame in frame_strategy(), cut in any::<usize>()) {
        let bytes = frame.encode();
        let cut = cut % bytes.len();
        let mut offset = 42u64;
        match Frame::read_from(&mut &bytes[..cut], &mut offset) {
            Ok(_) => prop_assert!(false, "truncation at {} decoded cleanly", cut),
            Err(ProtoError::Format { offset: at, message }) => {
                prop_assert_eq!(at, 42);
                prop_assert!(message.contains("truncated") || message.contains("checksum"),
                    "unexpected truncation message: {}", message);
            }
            Err(ProtoError::Io(_)) => {}
        }
    }

    /// Every single-bit flip anywhere in a frame — header, checksum
    /// field, or payload — is detected with a located error. The
    /// checksum covers header prefix and payload, and a flip inside the
    /// stored checksum itself mismatches the recomputation.
    #[test]
    fn bit_flips_are_always_detected(
        frame in frame_strategy(),
        flip in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut bytes = frame.encode();
        let pos = flip % bytes.len();
        bytes[pos] ^= 1 << bit;
        let mut offset = 0u64;
        match Frame::read_from(&mut bytes.as_slice(), &mut offset) {
            Ok(decoded) => prop_assert!(
                false,
                "flip at byte {} bit {} went undetected (decoded {:?})", pos, bit, decoded.kind
            ),
            Err(ProtoError::Format { offset: at, message }) => {
                prop_assert_eq!(at, 0);
                prop_assert!(!message.is_empty());
            }
            Err(ProtoError::Io(_)) => {}
        }
    }

    /// Trace-chunk payloads round-trip record-for-record, and re-encode
    /// byte-identically.
    #[test]
    fn trace_records_round_trip(records in trace_records_strategy()) {
        let payload = encode_trace_records(&records);
        let decoded = decode_trace_records(&payload, records.len() as u32, 0)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&decoded, &records, "decode lost information");
        prop_assert_eq!(encode_trace_records(&decoded), payload, "re-encode not byte-identical");
    }

    /// A wrong record count or a truncated trace payload fails with a
    /// located error — never a panic, never a silent partial decode.
    #[test]
    fn trace_payload_corruption_is_located(
        records in trace_records_strategy(),
        cut in any::<usize>(),
        base in any::<u32>(),
    ) {
        if records.is_empty() {
            // Nothing to corrupt; the vendored proptest has no
            // `prop_assume`, so accept the case outright.
            return Ok(());
        }
        let payload = encode_trace_records(&records);
        let count = records.len() as u32;
        let base = u64::from(base);
        for wrong in [count - 1, count + 1] {
            match decode_trace_records(&payload, wrong, base) {
                Ok(_) => prop_assert!(false, "count {} decoded cleanly", wrong),
                Err(ProtoError::Format { offset, message }) => {
                    prop_assert!(offset >= base && offset <= base + payload.len() as u64);
                    prop_assert!(!message.is_empty());
                }
                Err(ProtoError::Io(_)) => {}
            }
        }
        let cut = cut % payload.len();
        if let Err(ProtoError::Format { offset, message }) =
            decode_trace_records(&payload[..cut], count, base)
        {
            prop_assert!(offset >= base && offset <= base + cut as u64);
            prop_assert!(!message.is_empty());
        } else if decode_trace_records(&payload[..cut], count, base).is_ok() {
            prop_assert!(false, "truncation at {} decoded cleanly", cut);
        }
    }
}
