//! End-to-end smoke tests: a real server on a real socket, sessions in
//! both modes, and results identical to the batch pipeline.

use sigil_analysis::streaming::{CriticalPathFold, EventCdfgFold, PhaseFold};
use sigil_core::{SigilConfig, SigilProfiler};
use sigil_serve::{shutdown_server, Client, Listen, ServeConfig, Server, SessionSpec};
use sigil_trace::io::replay;
use sigil_trace::{MemAccess, OpClass, RuntimeEvent, SymbolTable};

/// A small but representative trace: nested calls, compute, memory
/// traffic with cross-function reuse, branches, a thread switch.
fn sample_trace() -> (SymbolTable, Vec<RuntimeEvent>) {
    let mut symbols = SymbolTable::default();
    let main = symbols.intern("main");
    let produce = symbols.intern("produce");
    let consume = symbols.intern("consume");
    let mut events = vec![RuntimeEvent::Call { callee: main }];
    for round in 0..40u64 {
        events.push(RuntimeEvent::Call { callee: produce });
        for i in 0..8u64 {
            let addr = 0x1000 + round * 64 + i * 8;
            events.push(RuntimeEvent::Op {
                class: OpClass::IntArith,
                count: 3,
            });
            events.push(RuntimeEvent::Write {
                access: MemAccess::new(addr, 8),
            });
        }
        events.push(RuntimeEvent::Branch {
            site: 0x40,
            taken: round % 3 == 0,
        });
        events.push(RuntimeEvent::Return);
        events.push(RuntimeEvent::Call { callee: consume });
        for i in 0..8u64 {
            let addr = 0x1000 + round * 64 + i * 8;
            events.push(RuntimeEvent::Read {
                access: MemAccess::new(addr, 8),
            });
            events.push(RuntimeEvent::Op {
                class: OpClass::FloatArith,
                count: 2,
            });
        }
        events.push(RuntimeEvent::Return);
        if round == 20 {
            events.push(RuntimeEvent::ThreadSwitch {
                thread: sigil_trace::ThreadId::from_raw(1),
            });
        }
    }
    events.push(RuntimeEvent::Return);
    (symbols, events)
}

fn batch_profile(
    symbols: &SymbolTable,
    events: &[RuntimeEvent],
    config: SigilConfig,
) -> sigil_core::Profile {
    let mut profiler = SigilProfiler::new(config);
    replay(events, &mut profiler);
    profiler.into_profile(symbols.clone())
}

#[test]
fn trace_session_matches_batch_over_tcp() {
    let server = Server::bind(Listen::parse("127.0.0.1:0"), ServeConfig::default()).expect("bind");
    let address = server.address();
    let (symbols, events) = sample_trace();
    let config = SigilConfig::default()
        .with_reuse_mode()
        .with_line_mode(64)
        .with_events()
        .with_phases(256);
    let batch = batch_profile(&symbols, &events, config);

    let spec = SessionSpec::trace("smoke", config);
    let mut client = Client::connect(&address, &spec).expect("connect");
    client.set_chunk_records(16); // force many chunks through the window
    client.stream_trace(&symbols, &events).expect("stream");
    let status = client.status().expect("status");
    assert_eq!(status.mode, "trace");
    let result = client.finish().expect("finish");

    assert_eq!(result.records, events.len() as u64);
    let online = result.profile.expect("trace sessions return a profile");
    assert_eq!(
        serde_json::to_string(&online).expect("json"),
        serde_json::to_string(&batch).expect("json"),
        "online profile must be byte-identical to batch"
    );
    assert!(result.phases.is_some());
    assert!(result.critpath.is_some());
}

#[test]
fn events_session_matches_streaming_folds() {
    let server = Server::bind(Listen::parse("127.0.0.1:0"), ServeConfig::default()).expect("bind");
    let address = server.address();
    let (symbols, events) = sample_trace();
    let profile = batch_profile(
        &symbols,
        &events,
        SigilConfig::default().with_events().with_phases(128),
    );
    let records = profile.events.as_ref().expect("events recorded").records();

    let bucket_ops = 128;
    let mut phases = PhaseFold::new(bucket_ops);
    let mut critpath = CriticalPathFold::new();
    let mut cdfg = EventCdfgFold::new();
    phases.extend(records);
    critpath.extend(records);
    cdfg.extend(records);
    let want_phases = phases.finish();
    let want_critpath = critpath.finish().expect("balanced stream");
    let want_cdfg = cdfg.finish();

    let spec = SessionSpec::events("smoke-events", Some(bucket_ops));
    let mut client = Client::connect(&address, &spec).expect("connect");
    client.set_chunk_records(32);
    client.stream_events(records).expect("stream");
    let snap = client.snapshot().expect("snapshot");
    assert_eq!(snap.records, records.len() as u64);
    let result = client.finish().expect("finish");

    assert_eq!(result.records, records.len() as u64);
    assert_eq!(
        serde_json::to_string(&result.phases).expect("json"),
        serde_json::to_string(&Some(want_phases)).expect("json")
    );
    assert_eq!(
        serde_json::to_string(&result.critpath).expect("json"),
        serde_json::to_string(&Some(want_critpath)).expect("json")
    );
    assert_eq!(result.cdfg_contexts, Some(want_cdfg.len() as u64));
    assert_eq!(result.cdfg_edges, Some(want_cdfg.edges().len() as u64));
}

#[test]
fn unix_socket_session_and_shutdown() {
    let dir = std::env::temp_dir().join(format!("sigil-serve-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("sigil.sock");
    let server = Server::bind(
        Listen::parse(path.to_str().expect("utf-8 path")),
        ServeConfig::default(),
    )
    .expect("bind uds");
    let address = server.address();
    let (symbols, events) = sample_trace();
    let config = SigilConfig::default().with_phases(512);
    let batch = batch_profile(&symbols, &events, config);

    let mut client =
        Client::connect(&address, &SessionSpec::trace("uds", config)).expect("connect");
    client.stream_trace(&symbols, &events).expect("stream");
    let result = client.finish().expect("finish");
    assert_eq!(
        serde_json::to_string(&result.profile).expect("json"),
        serde_json::to_string(&Some(batch)).expect("json")
    );

    let summary = shutdown_server(&address).expect("shutdown");
    assert!(summary.drained);
    assert_eq!(summary.active, 0);
    assert_eq!(summary.opened, 1);
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_trace_session_matches_batch() {
    let server = Server::bind(Listen::parse("127.0.0.1:0"), ServeConfig::default()).expect("bind");
    let address = server.address();
    let (symbols, events) = sample_trace();
    let config = SigilConfig::default()
        .with_reuse_mode()
        .with_line_mode(64)
        .with_phases(256)
        .with_shards(4);
    let batch = batch_profile(&symbols, &events, config);

    let mut client =
        Client::connect(&address, &SessionSpec::trace("sharded", config)).expect("connect");
    client.set_chunk_records(64);
    client.stream_trace(&symbols, &events).expect("stream");
    let result = client.finish().expect("finish");
    assert_eq!(
        serde_json::to_string(&result.profile).expect("json"),
        serde_json::to_string(&Some(batch)).expect("json"),
        "sharded server-side replay must match sharded batch"
    );
}
