//! LRU stack-distance (reuse-distance) profiling.
//!
//! The paper's line-reuse discussion notes the data "can be used for
//! re-use distance analysis and to inform cache-replacement policies"
//! (§IV-B3, citing compiler- and simulation-based prior work). This
//! module implements the classic Mattson LRU stack-distance algorithm
//! over cache-line accesses, using a Fenwick tree for O(log n) updates:
//! the distance of an access is the number of *distinct* lines touched
//! since the previous access to the same line. A fully-associative LRU
//! cache of capacity `C` lines hits exactly the accesses with distance
//! < `C`, so the distance histogram yields miss ratios for every
//! capacity at once.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sigil_trace::{ExecutionObserver, RuntimeEvent};

/// Fenwick (binary indexed) tree over access slots.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(capacity: usize) -> Self {
        Fenwick {
            tree: vec![0; capacity + 1],
        }
    }

    fn add(&mut self, mut index: usize, delta: i64) {
        index += 1;
        while index < self.tree.len() {
            self.tree[index] = self.tree[index].wrapping_add_signed(delta);
            index += index & index.wrapping_neg();
        }
    }

    /// Sum of slots `0..=index`.
    fn prefix(&self, mut index: usize) -> u64 {
        index += 1;
        let mut sum = 0;
        while index > 0 {
            sum += self.tree[index];
            index -= index & index.wrapping_neg();
        }
        sum
    }

    fn grow(&mut self, capacity: usize) {
        if capacity + 1 > self.tree.len() {
            // Rebuild by replaying marked slots is avoided by growing in
            // powers of two before any marks exist past the old end.
            let mut bigger = Fenwick::new(capacity.next_power_of_two());
            for i in 0..self.tree.len() - 1 {
                let value = self.prefix(i) - if i == 0 { 0 } else { self.prefix(i - 1) };
                if value > 0 {
                    bigger.add(i, value as i64);
                }
            }
            *self = bigger;
        }
    }
}

/// Histogram of LRU stack distances, measured in distinct cache lines.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistanceHistogram {
    /// `buckets[i]` counts accesses with distance in
    /// `[2^i - 1, 2^(i+1) - 1)` (bucket 0 holds distance 0, i.e. the
    /// previous access was the immediately preceding distinct line).
    pub buckets: Vec<u64>,
    /// First-ever accesses to a line (infinite distance / cold misses).
    pub cold: u64,
    /// Total accesses recorded.
    pub total: u64,
}

impl DistanceHistogram {
    fn record(&mut self, distance: u64) {
        let bucket = (64 - (distance + 1).leading_zeros() - 1) as usize;
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.total += 1;
    }

    fn record_cold(&mut self) {
        self.cold += 1;
        self.total += 1;
    }

    /// Miss ratio of a fully-associative LRU cache with `capacity_lines`
    /// lines: cold misses plus accesses with distance ≥ capacity.
    pub fn miss_ratio(&self, capacity_lines: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut hits = 0u64;
        for (bucket, &count) in self.buckets.iter().enumerate() {
            // Bucket covers distances [2^b - 1, 2^(b+1) - 1); count it a
            // hit only when the whole bucket fits (conservative).
            let upper = (1u64 << (bucket + 1)) - 2;
            if upper < capacity_lines {
                hits += count;
            }
        }
        1.0 - hits as f64 / self.total as f64
    }
}

/// An [`ExecutionObserver`] computing the line-granularity reuse-distance
/// histogram of an execution.
///
/// # Example
///
/// ```
/// use sigil_callgrind::stackdist::ReuseDistanceObserver;
/// use sigil_trace::{Engine, ExecutionObserver};
///
/// let mut engine = Engine::new(ReuseDistanceObserver::new(64));
/// let f = engine.symbols_mut().intern("f");
/// engine.call(f);
/// engine.read(0x000, 8);
/// engine.read(0x100, 8); // a different line
/// engine.read(0x000, 8); // distance 1: one distinct line in between
/// engine.ret();
/// let hist = engine.finish().into_histogram();
/// assert_eq!(hist.cold, 2);
/// assert_eq!(hist.total, 3);
/// ```
#[derive(Debug)]
pub struct ReuseDistanceObserver {
    line_shift: u32,
    /// line -> slot of its most recent access.
    last_slot: HashMap<u64, usize>,
    /// Fenwick tree marking slots whose line has not been re-accessed.
    marks: Fenwick,
    next_slot: usize,
    histogram: DistanceHistogram,
}

impl ReuseDistanceObserver {
    /// Creates an observer for `line_size`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics unless `line_size` is a power of two.
    pub fn new(line_size: u32) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        ReuseDistanceObserver {
            line_shift: line_size.trailing_zeros(),
            last_slot: HashMap::new(),
            marks: Fenwick::new(1024),
            next_slot: 0,
            histogram: DistanceHistogram::default(),
        }
    }

    /// Records one access to `line`, returning its LRU stack distance —
    /// the number of distinct lines touched since the previous access to
    /// `line` — or `None` for a cold (first) access.
    pub fn observe_line(&mut self, line: u64) -> Option<u64> {
        self.marks.grow(self.next_slot + 1);
        let distance = match self.last_slot.get(&line).copied() {
            Some(slot) => {
                // Distinct lines accessed after `slot`: marks in (slot, now).
                let after_slot =
                    self.marks.prefix(self.next_slot.saturating_sub(1)) - self.marks.prefix(slot);
                self.histogram.record(after_slot);
                self.marks.add(slot, -1);
                Some(after_slot)
            }
            None => {
                self.histogram.record_cold();
                None
            }
        };
        self.marks.add(self.next_slot, 1);
        self.last_slot.insert(line, self.next_slot);
        self.next_slot += 1;
        distance
    }

    fn touch_line(&mut self, line: u64) {
        let _ = self.observe_line(line);
    }

    /// The histogram accumulated so far.
    pub fn histogram(&self) -> &DistanceHistogram {
        &self.histogram
    }

    /// Consumes the observer, returning the histogram.
    pub fn into_histogram(self) -> DistanceHistogram {
        self.histogram
    }
}

impl ExecutionObserver for ReuseDistanceObserver {
    fn on_event(&mut self, event: RuntimeEvent) {
        if let Some(access) = event.access() {
            let first = access.addr >> self.line_shift;
            let last = access.end().saturating_sub(1) >> self.line_shift;
            for line in first..=last {
                self.touch_line(line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::Engine;

    fn distances(lines: &[u64]) -> DistanceHistogram {
        let mut obs = ReuseDistanceObserver::new(64);
        for &line in lines {
            obs.touch_line(line);
        }
        obs.into_histogram()
    }

    #[test]
    fn repeated_line_has_distance_zero() {
        let hist = distances(&[1, 1, 1, 1]);
        assert_eq!(hist.cold, 1);
        assert_eq!(hist.buckets[0], 3, "three distance-0 reuses");
    }

    #[test]
    fn classic_abcba_pattern() {
        // a b c b a: b reused at distance 1, a reused at distance 2.
        let hist = distances(&[10, 20, 30, 20, 10]);
        assert_eq!(hist.cold, 3);
        assert_eq!(hist.total, 5);
        // distance 1 lands in bucket 1 ([1,2]); distance 2 also bucket 1.
        let reuses: u64 = hist.buckets.iter().sum();
        assert_eq!(reuses, 2);
    }

    #[test]
    fn streaming_never_reuses() {
        let lines: Vec<u64> = (0..100).collect();
        let hist = distances(&lines);
        assert_eq!(hist.cold, 100);
        assert_eq!(hist.buckets.iter().sum::<u64>(), 0);
        assert_eq!(hist.miss_ratio(1 << 20), 1.0, "all cold misses");
    }

    #[test]
    fn loop_over_working_set_reuses_at_set_size() {
        // Two sweeps over 16 lines: second sweep reuses at distance 15.
        let mut lines: Vec<u64> = (0..16).collect();
        lines.extend(0..16);
        let hist = distances(&lines);
        assert_eq!(hist.cold, 16);
        // Distance 15 → bucket 3 ([7,14])? 15+1=16, log2=4 → bucket 3
        // covers [7,14], bucket 4 covers [15,30]: 15 lands in bucket 4.
        assert_eq!(hist.buckets[4], 16);
        // A 32-line LRU cache captures the second sweep entirely...
        assert!(hist.miss_ratio(32) <= 0.5 + 1e-9);
        // ...an 8-line cache captures none of it.
        assert_eq!(hist.miss_ratio(8), 1.0);
    }

    #[test]
    fn miss_ratio_is_monotone_in_capacity() {
        let mut lines = Vec::new();
        for sweep in 0..4u64 {
            for l in 0..64u64 {
                lines.push(l * (sweep + 1) % 64);
            }
        }
        let hist = distances(&lines);
        let mut last = 1.0f64;
        for cap in [1u64, 4, 16, 64, 256, 1024] {
            let ratio = hist.miss_ratio(cap);
            assert!(ratio <= last + 1e-12, "capacity {cap}");
            last = ratio;
        }
    }

    #[test]
    fn observer_sees_reads_and_writes() {
        let mut engine = Engine::new(ReuseDistanceObserver::new(64));
        let f = engine.symbols_mut().intern("f");
        engine.call(f);
        engine.write(0x00, 8);
        engine.read(0x00, 8);
        engine.read(0x40, 8);
        engine.ret();
        let hist = engine.finish().into_histogram();
        assert_eq!(hist.total, 3);
        assert_eq!(hist.cold, 2);
    }

    #[test]
    fn straddling_access_touches_both_lines() {
        let mut obs = ReuseDistanceObserver::new(64);
        obs.on_event(RuntimeEvent::Read {
            access: sigil_trace::MemAccess::new(60, 8),
        });
        assert_eq!(obs.histogram().total, 2);
    }

    #[test]
    fn fenwick_grow_preserves_marks() {
        let mut f = Fenwick::new(4);
        f.add(0, 1);
        f.add(3, 1);
        f.grow(100);
        assert_eq!(f.prefix(3), 2);
        assert_eq!(f.prefix(0), 1);
    }
}
