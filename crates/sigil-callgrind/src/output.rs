//! Flat-profile text rendering, in the spirit of `callgrind_annotate`.

use std::fmt::Write as _;

use crate::profiler::CallgrindProfile;

/// Renders the per-function flat profile as an aligned text table, sorted
/// by estimated cycles.
pub fn flat_profile(profile: &CallgrindProfile, max_rows: usize) -> String {
    let rows = profile.function_totals();
    let total_cycles = profile.total_cycles().max(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>12} {:>6} {:>10} {:>12} {:>10} {:>8} {:>8}  function",
        "cycles", "cyc%", "calls", "ir", "ops", "l1m", "llm"
    );
    for row in rows.iter().take(max_rows) {
        let _ = writeln!(
            out,
            "{:>12} {:>5.1}% {:>10} {:>12} {:>10} {:>8} {:>8}  {}",
            row.cycles,
            100.0 * row.cycles as f64 / total_cycles as f64,
            row.calls,
            row.costs.ir,
            row.costs.ops_total(),
            row.costs.l1_misses(),
            row.costs.ll_misses(),
            row.name
        );
    }
    let _ = writeln!(
        out,
        "total: {} contexts, {} estimated cycles, {} retired ops",
        profile.tree.len() - 1,
        profile.total_cycles(),
        profile.total_ops
    );
    out
}

/// Renders the calltree with per-context costs, indented by depth.
pub fn context_tree(profile: &CallgrindProfile) -> String {
    let mut out = String::new();
    render_subtree(profile, crate::calltree::ContextId::ROOT, 0, &mut out);
    out
}

fn render_subtree(
    profile: &CallgrindProfile,
    ctx: crate::calltree::ContextId,
    depth: usize,
    out: &mut String,
) {
    let node = profile.tree.node(ctx);
    if let Some(func) = node.func {
        let name = profile
            .symbols
            .get_name(func)
            .map_or_else(|| func.to_string(), str::to_owned);
        let _ = writeln!(
            out,
            "{:indent$}{name}  calls={} ir={} cycles={}",
            "",
            node.calls,
            node.costs.ir,
            profile.context_cycles(ctx),
            indent = depth * 2,
        );
    }
    for &child in &node.children {
        render_subtree(profile, child, depth + 1, out);
    }
}

/// Renders the profile in the classic callgrind file format
/// (`events:` header + per-function cost lines), loadable by
/// `callgrind_annotate`/`kcachegrind`-style consumers. Costs are the
/// per-function exclusive totals; the synthetic line number 1 is used
/// throughout (source positions do not exist for traced workloads).
pub fn callgrind_format(profile: &CallgrindProfile, command: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# callgrind format");
    let _ = writeln!(out, "version: 1");
    let _ = writeln!(out, "creator: sigil-rs");
    let _ = writeln!(out, "cmd: {command}");
    let _ = writeln!(out, "positions: line");
    let _ = writeln!(out, "events: Ir Dr Dw D1mr D1mw DLmr DLmw Bc Bcm");
    let _ = writeln!(out);
    for row in profile.function_totals() {
        let _ = writeln!(out, "fn={}", row.name);
        let c = row.costs;
        let _ = writeln!(
            out,
            "1 {} {} {} {} {} {} {} {} {}",
            c.ir,
            c.reads,
            c.writes,
            c.l1_read_misses,
            c.l1_write_misses,
            c.ll_read_misses,
            c.ll_write_misses,
            c.branches,
            c.mispredicts
        );
    }
    let total = profile.total_costs();
    let _ = writeln!(
        out,
        "totals: {} {} {} {} {} {} {} {} {}",
        total.ir,
        total.reads,
        total.writes,
        total.l1_read_misses,
        total.l1_write_misses,
        total.ll_read_misses,
        total.ll_write_misses,
        total.branches,
        total.mispredicts
    );
    out
}

#[cfg(test)]
mod tests {
    use crate::profiler::{CallgrindConfig, CallgrindProfiler};
    use sigil_trace::{Engine, OpClass};

    use super::*;

    fn sample_profile() -> CallgrindProfile {
        let mut engine = Engine::new(CallgrindProfiler::new(CallgrindConfig::default()));
        let main = engine.symbols_mut().intern("main");
        let inner = engine.symbols_mut().intern("inner");
        engine.call(main);
        engine.scoped(inner, |e| e.op(OpClass::IntArith, 42));
        engine.ret();
        let (p, s) = engine.finish_with_symbols();
        p.into_profile(s)
    }

    #[test]
    fn flat_profile_lists_functions() {
        let text = flat_profile(&sample_profile(), 10);
        assert!(text.contains("main"));
        assert!(text.contains("inner"));
        assert!(text.contains("total:"));
    }

    #[test]
    fn flat_profile_respects_row_limit() {
        let text = flat_profile(&sample_profile(), 1);
        // Header + 1 row + totals line = 3 lines.
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn callgrind_format_has_header_and_rows() {
        let text = callgrind_format(&sample_profile(), "bench main");
        assert!(text.starts_with("# callgrind format"));
        assert!(text.contains("events: Ir Dr Dw"));
        assert!(text.contains("cmd: bench main"));
        assert!(text.contains("fn=main"));
        assert!(text.contains("fn=inner"));
        assert!(text.contains("totals:"));
        // Each fn line is followed by a cost line starting with the
        // synthetic position.
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if line.starts_with("fn=") {
                assert!(lines[i + 1].starts_with("1 "), "cost line after {line}");
            }
        }
    }

    #[test]
    fn callgrind_format_totals_are_sums() {
        let profile = sample_profile();
        let text = callgrind_format(&profile, "x");
        let totals_line = text
            .lines()
            .find(|l| l.starts_with("totals:"))
            .expect("totals line");
        let ir: u64 = totals_line
            .split_whitespace()
            .nth(1)
            .expect("Ir field")
            .parse()
            .expect("numeric");
        assert_eq!(ir, profile.total_costs().ir);
    }

    #[test]
    fn context_tree_indents_children() {
        let text = context_tree(&sample_profile());
        let main_line = text.lines().find(|l| l.contains("main")).expect("main");
        let inner_line = text.lines().find(|l| l.contains("inner")).expect("inner");
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(inner_line) > indent(main_line));
    }
}
