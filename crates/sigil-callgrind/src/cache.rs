//! On-the-fly data-cache simulation (Callgrind's `--cache-sim`).

use serde::{Deserialize, Serialize};
use sigil_trace::MemAccess;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u32,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes (power of two).
    pub line_size: u32,
}

impl CacheConfig {
    /// A 32 KiB, 8-way, 64 B-line L1D (Callgrind's default-ish geometry).
    pub const fn l1d_default() -> Self {
        CacheConfig {
            size: 32 * 1024,
            assoc: 8,
            line_size: 64,
        }
    }

    /// An 8 MiB, 16-way, 64 B-line last-level cache.
    pub const fn ll_default() -> Self {
        CacheConfig {
            size: 8 * 1024 * 1024,
            assoc: 16,
            line_size: 64,
        }
    }

    /// Number of sets implied by the geometry.
    pub const fn sets(&self) -> u32 {
        self.size / (self.assoc * self.line_size)
    }

    /// Parses Callgrind's `--D1=<size>,<assoc>,<line>` geometry syntax,
    /// e.g. `"32768,8,64"`.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem on malformed input or an
    /// inconsistent geometry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let parts: Vec<&str> = spec.split(',').map(str::trim).collect();
        let [size, assoc, line_size] = parts.as_slice() else {
            return Err(format!("expected `size,assoc,line`, got `{spec}`"));
        };
        let parse_u32 = |field: &str, what: &str| -> Result<u32, String> {
            field
                .parse()
                .map_err(|_| format!("bad {what} `{field}` in `{spec}`"))
        };
        let config = CacheConfig {
            size: parse_u32(size, "size")?,
            assoc: parse_u32(assoc, "associativity")?,
            line_size: parse_u32(line_size, "line size")?,
        };
        if !config.line_size.is_power_of_two()
            || config.assoc == 0
            || config.line_size == 0
            || config.size == 0
            || !config.size.is_multiple_of(config.assoc * config.line_size)
            || !config.sets().is_power_of_two()
        {
            return Err(format!("inconsistent cache geometry `{spec}`"));
        }
        Ok(config)
    }

    fn validate(&self) {
        assert!(
            self.line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(self.assoc >= 1, "associativity must be at least 1");
        assert!(
            self.size.is_multiple_of(self.assoc * self.line_size) && self.sets() >= 1,
            "size must be a positive multiple of assoc * line_size"
        );
        assert!(
            self.sets().is_power_of_two(),
            "set count must be a power of two"
        );
    }
}

/// One set-associative LRU cache level.
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    /// `tags[set * assoc + way]`; `u64::MAX` = invalid. Ways are kept in
    /// LRU order within each set: way 0 is most recently used.
    tags: Vec<u64>,
    accesses: u64,
    misses: u64,
}

impl CacheSim {
    /// Creates a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two line size
    /// or set count, zero ways).
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        CacheSim {
            config,
            tags: vec![u64::MAX; (config.sets() * config.assoc) as usize],
            accesses: 0,
            misses: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Touches the line containing `line_addr` (a *line index*, not a byte
    /// address); returns `true` on a miss.
    pub fn touch_line(&mut self, line_addr: u64) -> bool {
        self.accesses += 1;
        let sets = u64::from(self.config.sets());
        let assoc = self.config.assoc as usize;
        let set = (line_addr & (sets - 1)) as usize;
        let tag = line_addr / sets;
        let base = set * assoc;
        let ways = &mut self.tags[base..base + assoc];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            // Hit: move to MRU position.
            ways[..=pos].rotate_right(1);
            false
        } else {
            // Miss: evict LRU (last way), insert at MRU.
            ways.rotate_right(1);
            ways[0] = tag;
            self.misses += 1;
            true
        }
    }

    /// Total line touches so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// A two-level (L1D + LL) data-cache hierarchy.
///
/// # Example
///
/// ```
/// use sigil_callgrind::{CacheConfig, CacheHierarchy};
/// use sigil_trace::MemAccess;
///
/// let mut caches = CacheHierarchy::with_defaults();
/// let (l1m, llm) = caches.access(MemAccess::new(0x1000, 8));
/// assert_eq!((l1m, llm), (1, 1), "cold caches miss at both levels");
/// let (l1m, llm) = caches.access(MemAccess::new(0x1000, 8));
/// assert_eq!((l1m, llm), (0, 0), "then hit");
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: CacheSim,
    ll: CacheSim,
}

impl CacheHierarchy {
    /// Creates a hierarchy from explicit geometries.
    ///
    /// # Panics
    ///
    /// Panics if the two levels disagree on line size (Callgrind has the
    /// same restriction) or either geometry is invalid.
    pub fn new(l1: CacheConfig, ll: CacheConfig) -> Self {
        assert_eq!(
            l1.line_size, ll.line_size,
            "L1 and LL must share a line size"
        );
        CacheHierarchy {
            l1: CacheSim::new(l1),
            ll: CacheSim::new(ll),
        }
    }

    /// Creates the default 32 KiB L1D / 8 MiB LL hierarchy.
    pub fn with_defaults() -> Self {
        CacheHierarchy::new(CacheConfig::l1d_default(), CacheConfig::ll_default())
    }

    /// Line size shared by both levels.
    pub fn line_size(&self) -> u32 {
        self.l1.config().line_size
    }

    /// Simulates one data access; a multi-line access touches each covered
    /// line. Returns `(l1_misses, ll_misses)` incurred by this access.
    pub fn access(&mut self, access: MemAccess) -> (u64, u64) {
        let line_size = u64::from(self.line_size());
        let first = access.addr / line_size;
        let last = access.end().saturating_sub(1) / line_size;
        let mut l1_misses = 0;
        let mut ll_misses = 0;
        for line in first..=last {
            if self.l1.touch_line(line) {
                l1_misses += 1;
                if self.ll.touch_line(line) {
                    ll_misses += 1;
                }
            }
        }
        (l1_misses, ll_misses)
    }

    /// The L1 level.
    pub fn l1(&self) -> &CacheSim {
        &self.l1
    }

    /// The LL level.
    pub fn ll(&self) -> &CacheSim {
        &self.ll
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache(assoc: u32, lines: u32) -> CacheSim {
        CacheSim::new(CacheConfig {
            size: 64 * assoc * lines,
            assoc,
            line_size: 64,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny_cache(2, 2);
        assert!(c.touch_line(0));
        assert!(!c.touch_line(0));
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent_way() {
        // 1 set (lines=1), 2 ways: lines 0 and 2 map to the same set.
        let mut c = tiny_cache(2, 1);
        assert!(c.touch_line(0)); // miss, set = {0}
        assert!(c.touch_line(1)); // miss, set = {1, 0}
        assert!(!c.touch_line(0)); // hit, set = {0, 1}
        assert!(c.touch_line(2)); // miss, evicts 1
        assert!(!c.touch_line(0)); // 0 survived (was MRU)
        assert!(c.touch_line(1)); // 1 was evicted
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = tiny_cache(1, 2); // 2 sets, direct mapped
        assert!(c.touch_line(0));
        assert!(c.touch_line(2)); // same set as 0, evicts it
        assert!(c.touch_line(0)); // conflict miss
        assert!(c.touch_line(1)); // line 1: its own set, cold miss
        assert!(!c.touch_line(1)); // then a hit
    }

    #[test]
    fn hierarchy_ll_absorbs_l1_conflict_misses() {
        // Tiny L1 (1 set x 1 way), large LL.
        let l1 = CacheConfig {
            size: 64,
            assoc: 1,
            line_size: 64,
        };
        let ll = CacheConfig::ll_default();
        let mut h = CacheHierarchy::new(l1, ll);
        let a = MemAccess::new(0, 8);
        let b = MemAccess::new(64, 8);
        assert_eq!(h.access(a), (1, 1));
        assert_eq!(h.access(b), (1, 1));
        // `a` was evicted from L1 but lives in LL.
        assert_eq!(h.access(a), (1, 0));
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut h = CacheHierarchy::with_defaults();
        let (l1m, llm) = h.access(MemAccess::new(60, 8));
        assert_eq!((l1m, llm), (2, 2));
    }

    #[test]
    fn sets_computed_from_geometry() {
        assert_eq!(CacheConfig::l1d_default().sets(), 64);
    }

    #[test]
    fn parse_accepts_callgrind_syntax() {
        let c = CacheConfig::parse("32768,8,64").expect("valid spec");
        assert_eq!(c, CacheConfig::l1d_default());
        let c = CacheConfig::parse(" 8388608 , 16 , 64 ").expect("whitespace ok");
        assert_eq!(c, CacheConfig::ll_default());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(CacheConfig::parse("32768,8").is_err());
        assert!(CacheConfig::parse("a,b,c").is_err());
        assert!(CacheConfig::parse("32768,8,63").is_err(), "non-pow2 line");
        assert!(CacheConfig::parse("1000,3,64").is_err(), "bad multiple");
        assert!(CacheConfig::parse("0,1,64").is_err());
    }

    #[test]
    #[should_panic(expected = "share a line size")]
    fn mismatched_line_sizes_rejected() {
        let l1 = CacheConfig {
            size: 4096,
            assoc: 1,
            line_size: 32,
        };
        let _ = CacheHierarchy::new(l1, CacheConfig::ll_default());
    }

    #[test]
    fn hit_rate_improves_with_locality() {
        let mut h = CacheHierarchy::with_defaults();
        // Stream once (cold), then re-walk: second pass should hit.
        for i in 0..64u64 {
            h.access(MemAccess::new(i * 64, 8));
        }
        let cold_misses = h.l1().misses();
        for i in 0..64u64 {
            h.access(MemAccess::new(i * 64, 8));
        }
        assert_eq!(h.l1().misses(), cold_misses, "warm pass added no misses");
    }
}
