//! Bimodal branch predictor (Callgrind's `--branch-sim` analogue).

/// A table of 2-bit saturating counters indexed by a hash of the branch
/// site, used to estimate the branch-misprediction counts that feed the
/// cycle-estimation formula.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    /// 2-bit counters: 0,1 predict not-taken; 2,3 predict taken.
    counters: Vec<u8>,
    predictions: u64,
    mispredicts: u64,
}

impl BranchPredictor {
    /// Default table size (entries).
    pub const DEFAULT_ENTRIES: usize = 16 * 1024;

    /// Creates a predictor with the default table size.
    pub fn new() -> Self {
        BranchPredictor::with_entries(Self::DEFAULT_ENTRIES)
    }

    /// Creates a predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a non-zero power of two.
    pub fn with_entries(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "entry count must be a non-zero power of two"
        );
        BranchPredictor {
            // Initialize to 1 (weakly not-taken), a common reset state.
            counters: vec![1u8; entries],
            predictions: 0,
            mispredicts: 0,
        }
    }

    fn slot(&self, site: u64) -> usize {
        // Fibonacci hashing spreads clustered site ids across the table.
        let hash = site.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (hash >> 32) as usize & (self.counters.len() - 1)
    }

    /// Predicts the branch at `site`, updates the counter with the actual
    /// `taken` outcome, and returns `true` iff the prediction was wrong.
    pub fn predict_and_update(&mut self, site: u64, taken: bool) -> bool {
        let slot = self.slot(site);
        let counter = &mut self.counters[slot];
        let predicted_taken = *counter >= 2;
        let mispredicted = predicted_taken != taken;
        *counter = if taken {
            (*counter + 1).min(3)
        } else {
            counter.saturating_sub(1)
        };
        self.predictions += 1;
        if mispredicted {
            self.mispredicts += 1;
        }
        mispredicted
    }

    /// Total branches predicted.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction rate in `[0, 1]`; 0 when no branches were seen.
    pub fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.predictions as f64
        }
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_taken_branch_converges_to_correct() {
        let mut bp = BranchPredictor::new();
        for _ in 0..100 {
            bp.predict_and_update(0x40, true);
        }
        // After warmup (at most 2 mispredicts) everything is predicted.
        assert!(bp.mispredicts() <= 2, "got {}", bp.mispredicts());
        assert_eq!(bp.predictions(), 100);
    }

    #[test]
    fn alternating_branch_mispredicts_heavily() {
        let mut bp = BranchPredictor::new();
        for i in 0..100 {
            bp.predict_and_update(0x40, i % 2 == 0);
        }
        assert!(
            bp.miss_rate() > 0.4,
            "alternating pattern should defeat a bimodal predictor, rate {}",
            bp.miss_rate()
        );
    }

    #[test]
    fn loop_exit_costs_about_one_miss_per_loop() {
        let mut bp = BranchPredictor::new();
        // 10 loops of 50 taken iterations + 1 not-taken exit.
        for _ in 0..10 {
            for _ in 0..50 {
                bp.predict_and_update(0x80, true);
            }
            bp.predict_and_update(0x80, false);
        }
        // ~1 miss per exit (plus warmup); far fewer than total branches.
        assert!(bp.mispredicts() <= 10 + 2, "got {}", bp.mispredicts());
    }

    #[test]
    fn distinct_sites_do_not_interfere() {
        let mut bp = BranchPredictor::new();
        for _ in 0..50 {
            bp.predict_and_update(0x1, true);
            bp.predict_and_update(0x2, false);
        }
        assert!(bp.mispredicts() <= 4);
    }

    #[test]
    fn zero_branches_zero_rate() {
        let bp = BranchPredictor::new();
        assert_eq!(bp.miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = BranchPredictor::with_entries(1000);
    }
}
