//! The Callgrind-like profiler observer.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sigil_trace::{ExecutionObserver, FunctionId, OpClock, RuntimeEvent, SymbolTable, Timestamp};

use crate::branch::BranchPredictor;
use crate::cache::{CacheConfig, CacheHierarchy};
use crate::calltree::{CallTree, ContextId};
use crate::costs::CostVec;
use crate::cycle::CycleModel;

/// Configuration of the Callgrind-like profiler.
#[derive(Debug, Clone, Copy)]
pub struct CallgrindConfig {
    /// Cache geometries to simulate, or `None` to skip cache simulation.
    pub cache: Option<(CacheConfig, CacheConfig)>,
    /// Whether to run the branch predictor.
    pub branch_sim: bool,
    /// Weights for cycle estimation.
    pub cycle_model: CycleModel,
}

impl Default for CallgrindConfig {
    fn default() -> Self {
        CallgrindConfig {
            cache: Some((CacheConfig::l1d_default(), CacheConfig::ll_default())),
            branch_sim: true,
            cycle_model: CycleModel::callgrind_default(),
        }
    }
}

/// An [`ExecutionObserver`] reproducing Callgrind: it maintains the
/// context-sensitive calltree, per-context cost vectors, and on-the-fly
/// cache and branch simulations.
///
/// System calls appear as contexts of their own — their boundary traffic
/// is accounted but, as in the paper, nothing inside them is decomposed
/// further.
#[derive(Debug)]
pub struct CallgrindProfiler {
    tree: CallTree,
    caches: Option<CacheHierarchy>,
    predictor: Option<BranchPredictor>,
    clock: OpClock,
    cycle_model: CycleModel,
}

impl CallgrindProfiler {
    /// Creates a profiler with the given configuration.
    pub fn new(config: CallgrindConfig) -> Self {
        CallgrindProfiler {
            tree: CallTree::new(),
            caches: config.cache.map(|(l1, ll)| CacheHierarchy::new(l1, ll)),
            predictor: config.branch_sim.then(BranchPredictor::new),
            clock: OpClock::new(),
            cycle_model: config.cycle_model,
        }
    }

    /// The context currently executing. Exposed so that the Sigil profiler
    /// can "hook into Callgrind" for context identification.
    pub fn current_context(&self) -> ContextId {
        self.tree.current()
    }

    /// Platform-independent time now (retired ops so far).
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// The calltree built so far.
    pub fn tree(&self) -> &CallTree {
        &self.tree
    }

    /// Consumes the profiler, pairing the calltree with `symbols` into a
    /// queryable profile.
    pub fn into_profile(self, symbols: SymbolTable) -> CallgrindProfile {
        CallgrindProfile {
            tree: self.tree,
            symbols,
            cycle_model: self.cycle_model,
            total_ops: self.clock.now().as_raw(),
        }
    }
}

impl ExecutionObserver for CallgrindProfiler {
    fn on_event(&mut self, event: RuntimeEvent) {
        self.clock.tick(event);
        match event {
            RuntimeEvent::Call { callee } => {
                self.tree.enter(callee);
                self.tree.current_costs_mut().ir += 1;
            }
            RuntimeEvent::Return | RuntimeEvent::SyscallExit => {
                self.tree.current_costs_mut().ir += 1;
                self.tree.leave();
            }
            RuntimeEvent::SyscallEnter { name } => {
                self.tree.enter_syscall(name);
                self.tree.current_costs_mut().ir += 1;
            }
            RuntimeEvent::Read { access } => {
                let (l1m, llm) = self
                    .caches
                    .as_mut()
                    .map_or((0, 0), |caches| caches.access(access));
                let costs = self.tree.current_costs_mut();
                costs.ir += 1;
                costs.reads += 1;
                costs.bytes_read += u64::from(access.size);
                costs.l1_read_misses += l1m;
                costs.ll_read_misses += llm;
            }
            RuntimeEvent::Write { access } => {
                let (l1m, llm) = self
                    .caches
                    .as_mut()
                    .map_or((0, 0), |caches| caches.access(access));
                let costs = self.tree.current_costs_mut();
                costs.ir += 1;
                costs.writes += 1;
                costs.bytes_written += u64::from(access.size);
                costs.l1_write_misses += l1m;
                costs.ll_write_misses += llm;
            }
            RuntimeEvent::Op { class, count } => {
                self.tree.current_costs_mut().add_ops(class, count);
            }
            RuntimeEvent::ThreadSwitch { thread } => {
                // Cursor hop only; the switch itself is not attributed to
                // any function context.
                self.tree.switch_thread(thread.as_raw());
            }
            RuntimeEvent::Branch { site, taken } => {
                let missed = self
                    .predictor
                    .as_mut()
                    .is_some_and(|p| p.predict_and_update(site, taken));
                let costs = self.tree.current_costs_mut();
                costs.ir += 1;
                costs.branches += 1;
                if missed {
                    costs.mispredicts += 1;
                }
            }
        }
    }
}

/// Per-function totals (summed over contexts) within a profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionRow {
    /// The function.
    pub func: FunctionId,
    /// Its symbol name.
    pub name: String,
    /// Dynamic calls.
    pub calls: u64,
    /// Exclusive costs summed over all of the function's contexts.
    pub costs: CostVec,
    /// Estimated cycles for those costs.
    pub cycles: u64,
}

/// A finished Callgrind-like profile: calltree + symbols + cycle model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallgrindProfile {
    /// The context-sensitive calltree with exclusive costs.
    pub tree: CallTree,
    /// Function names.
    pub symbols: SymbolTable,
    /// The cycle model profiles were estimated with.
    pub cycle_model: CycleModel,
    /// Total retired guest operations (the serial "length" of the run).
    pub total_ops: u64,
}

impl CallgrindProfile {
    /// Per-function exclusive totals, sorted by estimated cycles,
    /// descending.
    pub fn function_totals(&self) -> Vec<FunctionRow> {
        let mut rows: HashMap<FunctionId, FunctionRow> = HashMap::new();
        for (_, node) in self.tree.iter() {
            let Some(func) = node.func else { continue };
            let row = rows.entry(func).or_insert_with(|| FunctionRow {
                func,
                name: self
                    .symbols
                    .get_name(func)
                    .map_or_else(|| func.to_string(), str::to_owned),
                calls: 0,
                costs: CostVec::new(),
                cycles: 0,
            });
            row.calls += node.calls;
            row.costs += node.costs;
        }
        let mut rows: Vec<FunctionRow> = rows
            .into_values()
            .map(|mut row| {
                row.cycles = self.cycle_model.estimate(&row.costs);
                row
            })
            .collect();
        rows.sort_by(|a, b| b.cycles.cmp(&a.cycles).then_with(|| a.name.cmp(&b.name)));
        rows
    }

    /// Whole-program exclusive costs (sum over all contexts).
    pub fn total_costs(&self) -> CostVec {
        self.tree.iter().map(|(_, n)| n.costs).sum()
    }

    /// Whole-program estimated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.cycle_model.estimate(&self.total_costs())
    }

    /// Estimated cycles for one context's exclusive costs.
    pub fn context_cycles(&self, ctx: ContextId) -> u64 {
        self.cycle_model.estimate(&self.tree.node(ctx).costs)
    }

    /// Estimated cycles for a context's whole sub-tree — the `t_sw`
    /// input of the paper's breakeven-speedup metric.
    pub fn inclusive_cycles(&self, ctx: ContextId) -> u64 {
        self.cycle_model.estimate(&self.tree.inclusive_costs(ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigil_trace::{Engine, OpClass};

    fn profile_toy() -> CallgrindProfile {
        let mut engine = Engine::new(CallgrindProfiler::new(CallgrindConfig::default()));
        let main = engine.symbols_mut().intern("main");
        let work = engine.symbols_mut().intern("work");
        engine.call(main);
        engine.op(OpClass::IntArith, 10);
        engine.scoped(work, |e| {
            e.op(OpClass::FloatArith, 100);
            for i in 0..8 {
                e.write(0x1000 + i * 8, 8);
            }
            for i in 0..8 {
                e.read(0x1000 + i * 8, 8);
            }
        });
        engine.ret();
        let (profiler, symbols) = engine.finish_with_symbols();
        profiler.into_profile(symbols)
    }

    #[test]
    fn function_totals_attribute_costs() {
        let profile = profile_toy();
        let rows = profile.function_totals();
        let work = rows.iter().find(|r| r.name == "work").expect("work row");
        assert_eq!(work.calls, 1);
        assert_eq!(work.costs.flops(), 100);
        assert_eq!(work.costs.writes, 8);
        assert_eq!(work.costs.reads, 8);
        assert_eq!(work.costs.bytes_written, 64);
        let main = rows.iter().find(|r| r.name == "main").expect("main row");
        assert_eq!(main.costs.ops_total(), 10);
        assert_eq!(main.costs.reads, 0);
    }

    #[test]
    fn cache_misses_recorded_for_cold_accesses() {
        let profile = profile_toy();
        let rows = profile.function_totals();
        let work = rows.iter().find(|r| r.name == "work").expect("work row");
        // 8 writes to a single 64-byte line: 1 cold miss; reads then hit.
        assert_eq!(work.costs.l1_write_misses, 1);
        assert_eq!(work.costs.l1_read_misses, 0);
    }

    #[test]
    fn cycles_exceed_ir_when_misses_exist() {
        let profile = profile_toy();
        let total = profile.total_costs();
        assert!(profile.total_cycles() > total.ir);
    }

    #[test]
    fn inclusive_cycles_cover_subtree() {
        let profile = profile_toy();
        let (main_ctx, _) = profile
            .tree
            .iter()
            .find(|(_, n)| {
                n.func
                    .is_some_and(|f| profile.symbols.get_name(f) == Some("main"))
            })
            .expect("main context");
        assert_eq!(
            profile.inclusive_cycles(main_ctx),
            profile.total_cycles(),
            "main's sub-tree is the whole program"
        );
        assert!(profile.context_cycles(main_ctx) < profile.inclusive_cycles(main_ctx));
    }

    #[test]
    fn total_ops_matches_op_clock() {
        let profile = profile_toy();
        // call + 10 ops + (call + 100 ops + 8 writes + 8 reads + ret) + ret
        assert_eq!(profile.total_ops, 1 + 10 + 1 + 100 + 8 + 8 + 1 + 1);
    }

    #[test]
    fn syscalls_get_their_own_context() {
        let mut engine = Engine::new(CallgrindProfiler::new(CallgrindConfig::default()));
        let main = engine.symbols_mut().intern("main");
        engine.call(main);
        engine.syscall("sys_read", |e| e.write(0x9000, 128));
        engine.ret();
        let (profiler, symbols) = engine.finish_with_symbols();
        let profile = profiler.into_profile(symbols);
        let rows = profile.function_totals();
        let sys = rows
            .iter()
            .find(|r| r.name == "sys_read")
            .expect("syscall row");
        assert_eq!(sys.costs.bytes_written, 128);
    }

    #[test]
    fn profiler_without_sims_counts_plain_costs() {
        let config = CallgrindConfig {
            cache: None,
            branch_sim: false,
            ..CallgrindConfig::default()
        };
        let mut engine = Engine::new(CallgrindProfiler::new(config));
        let f = engine.symbols_mut().intern("f");
        engine.call(f);
        engine.read(0x10, 4);
        engine.branch(1, true);
        engine.ret();
        let (profiler, symbols) = engine.finish_with_symbols();
        let profile = profiler.into_profile(symbols);
        let total = profile.total_costs();
        assert_eq!(total.l1_misses(), 0);
        assert_eq!(total.mispredicts, 0);
        assert_eq!(total.branches, 1);
    }
}
