//! Per-context cost vectors.

use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};
use sigil_trace::OpClass;

/// The cost counters Callgrind keeps per function context.
///
/// All counters are *exclusive* (self) costs; inclusive costs over
/// sub-trees are computed by `sigil-analysis` when trimming calltrees.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostVec {
    /// Retired guest operations of every kind ("instructions", Ir).
    pub ir: u64,
    /// Retired compute operations per [`OpClass`] (indexed by
    /// `OpClass::index()`).
    pub ops: [u64; 4],
    /// Data-read accesses (Dr).
    pub reads: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Data-write accesses (Dw).
    pub writes: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// First-level data-cache read misses (D1mr).
    pub l1_read_misses: u64,
    /// First-level data-cache write misses (D1mw).
    pub l1_write_misses: u64,
    /// Last-level cache read misses (DLmr).
    pub ll_read_misses: u64,
    /// Last-level cache write misses (DLmw).
    pub ll_write_misses: u64,
    /// Conditional branches executed (Bc).
    pub branches: u64,
    /// Conditional branches mispredicted (Bcm).
    pub mispredicts: u64,
}

impl CostVec {
    /// A zero cost vector.
    pub const fn new() -> Self {
        CostVec {
            ir: 0,
            ops: [0; 4],
            reads: 0,
            bytes_read: 0,
            writes: 0,
            bytes_written: 0,
            l1_read_misses: 0,
            l1_write_misses: 0,
            ll_read_misses: 0,
            ll_write_misses: 0,
            branches: 0,
            mispredicts: 0,
        }
    }

    /// Total retired compute operations across all classes — the paper's
    /// per-function "number of operations" used by the partitioning
    /// heuristic.
    pub fn ops_total(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Floating-point operations retired.
    pub fn flops(&self) -> u64 {
        self.ops[OpClass::FloatArith.index()]
    }

    /// Total L1 data misses (read + write).
    pub fn l1_misses(&self) -> u64 {
        self.l1_read_misses + self.l1_write_misses
    }

    /// Total last-level misses (read + write).
    pub fn ll_misses(&self) -> u64 {
        self.ll_read_misses + self.ll_write_misses
    }

    /// Total data accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Adds `count` ops of class `class` (also retiring them in `ir`).
    pub fn add_ops(&mut self, class: OpClass, count: u32) {
        self.ops[class.index()] += u64::from(count);
        self.ir += u64::from(count);
    }
}

impl AddAssign for CostVec {
    fn add_assign(&mut self, rhs: CostVec) {
        self.ir += rhs.ir;
        for i in 0..self.ops.len() {
            self.ops[i] += rhs.ops[i];
        }
        self.reads += rhs.reads;
        self.bytes_read += rhs.bytes_read;
        self.writes += rhs.writes;
        self.bytes_written += rhs.bytes_written;
        self.l1_read_misses += rhs.l1_read_misses;
        self.l1_write_misses += rhs.l1_write_misses;
        self.ll_read_misses += rhs.ll_read_misses;
        self.ll_write_misses += rhs.ll_write_misses;
        self.branches += rhs.branches;
        self.mispredicts += rhs.mispredicts;
    }
}

impl Add for CostVec {
    type Output = CostVec;

    fn add(mut self, rhs: CostVec) -> CostVec {
        self += rhs;
        self
    }
}

impl std::iter::Sum for CostVec {
    fn sum<I: Iterator<Item = CostVec>>(iter: I) -> CostVec {
        iter.fold(CostVec::new(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_ops_updates_class_and_ir() {
        let mut c = CostVec::new();
        c.add_ops(OpClass::FloatArith, 10);
        c.add_ops(OpClass::IntArith, 5);
        assert_eq!(c.flops(), 10);
        assert_eq!(c.ops_total(), 15);
        assert_eq!(c.ir, 15);
    }

    #[test]
    fn addition_is_componentwise() {
        let mut a = CostVec::new();
        a.reads = 3;
        a.l1_read_misses = 1;
        let mut b = CostVec::new();
        b.reads = 4;
        b.ll_write_misses = 2;
        let c = a + b;
        assert_eq!(c.reads, 7);
        assert_eq!(c.l1_misses(), 1);
        assert_eq!(c.ll_misses(), 2);
        assert_eq!(c.accesses(), 7);
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![
            CostVec {
                ir: 1,
                ..CostVec::new()
            },
            CostVec {
                ir: 2,
                ..CostVec::new()
            },
        ];
        let total: CostVec = parts.into_iter().sum();
        assert_eq!(total.ir, 3);
    }
}
