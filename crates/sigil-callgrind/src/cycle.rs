//! Cycle estimation (Callgrind's `CEst`).

use serde::{Deserialize, Serialize};

use crate::costs::CostVec;

/// Weights for the estimated-cycle formula.
///
/// The paper estimates a function's software run time with the same
/// calculation Callgrind uses: a weighted sum of instruction count, L1
/// misses, last-level misses and branch mispredictions. KCachegrind's
/// canonical weights are `CEst = Ir + 10·Bm + 10·L1m + 100·LLm`, which are
/// the defaults here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleModel {
    /// Cycles per retired instruction.
    pub ir_weight: u64,
    /// Penalty per L1 data miss.
    pub l1_miss_penalty: u64,
    /// Penalty per last-level miss.
    pub ll_miss_penalty: u64,
    /// Penalty per branch misprediction.
    pub branch_miss_penalty: u64,
}

impl CycleModel {
    /// The canonical Callgrind/KCachegrind weights.
    pub const fn callgrind_default() -> Self {
        CycleModel {
            ir_weight: 1,
            l1_miss_penalty: 10,
            ll_miss_penalty: 100,
            branch_miss_penalty: 10,
        }
    }

    /// Estimated cycles for `costs` under this model.
    pub fn estimate(&self, costs: &CostVec) -> u64 {
        self.ir_weight * costs.ir
            + self.l1_miss_penalty * costs.l1_misses()
            + self.ll_miss_penalty * costs.ll_misses()
            + self.branch_miss_penalty * costs.mispredicts
    }
}

impl Default for CycleModel {
    fn default() -> Self {
        CycleModel::callgrind_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_callgrind_formula() {
        let costs = CostVec {
            ir: 1000,
            l1_read_misses: 3,
            l1_write_misses: 2,
            ll_read_misses: 1,
            ll_write_misses: 0,
            mispredicts: 7,
            ..CostVec::new()
        };
        let model = CycleModel::default();
        assert_eq!(model.estimate(&costs), 1000 + 10 * 5 + 100 + 10 * 7);
    }

    #[test]
    fn zero_costs_estimate_zero() {
        assert_eq!(CycleModel::default().estimate(&CostVec::new()), 0);
    }

    #[test]
    fn custom_weights_apply() {
        let model = CycleModel {
            ir_weight: 2,
            l1_miss_penalty: 0,
            ll_miss_penalty: 0,
            branch_miss_penalty: 0,
        };
        let costs = CostVec {
            ir: 10,
            ..CostVec::new()
        };
        assert_eq!(model.estimate(&costs), 20);
    }
}
