//! The context-sensitive calltree.

use std::fmt;

use serde::{Deserialize, Serialize};
use sigil_trace::{FunctionId, SymbolTable};

use crate::costs::CostVec;

/// Identifier of a *function context*: one node of the calltree,
/// i.e. a function reached through a particular call path.
///
/// "We keep separate accounting of costs for functions called through
/// different contexts" (IISWC'13 §III) — the paper's Fig. 2 splits
/// function `D` into `D1`/`D2` this way.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ContextId(pub u32);

impl ContextId {
    /// The synthetic root context (above `main`).
    pub const ROOT: ContextId = ContextId(0);

    /// Table index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx#{}", self.0)
    }
}

/// One calltree node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextNode {
    /// The function this context executes; `None` only for the root.
    pub func: Option<FunctionId>,
    /// Parent context; `None` only for the root.
    pub parent: Option<ContextId>,
    /// Child contexts, in first-call order.
    pub children: Vec<ContextId>,
    /// Dynamic calls that entered this context.
    pub calls: u64,
    /// Exclusive (self) costs accumulated while this context was on top
    /// of the stack.
    pub costs: CostVec,
    /// Whether this context is an opaque operating-system call rather
    /// than an instrumented function.
    pub is_syscall: bool,
}

/// A calltree with per-context exclusive costs and an *enter/leave*
/// cursor maintained by the profiler.
///
/// Self-recursive calls fold into their own context (so `calls` counts
/// them but the context set stays finite); beyond
/// [`CallTree::MAX_DEPTH`] all further calls fold into the current
/// context as a safety valve.
///
/// Multi-threaded traces keep one cursor stack per thread
/// ([`CallTree::switch_thread`]); all threads share the single context
/// tree, so a function reached through the same path on two threads is
/// one context. Cursor state is transient and not serialized.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CallTree {
    nodes: Vec<ContextNode>,
    #[serde(skip)]
    stack: Vec<ContextId>,
    #[serde(skip)]
    parked_stacks: std::collections::HashMap<u32, Vec<ContextId>>,
    #[serde(skip)]
    current_thread: u32,
}

impl CallTree {
    /// Context-depth safety cap.
    pub const MAX_DEPTH: usize = 512;

    /// Creates a tree holding only the root context.
    pub fn new() -> Self {
        CallTree {
            nodes: vec![ContextNode {
                func: None,
                parent: None,
                children: Vec::new(),
                calls: 0,
                costs: CostVec::new(),
                is_syscall: false,
            }],
            stack: Vec::new(),
            parked_stacks: std::collections::HashMap::new(),
            current_thread: 0,
        }
    }

    /// Switches the cursor to `thread`'s call stack (creating an empty
    /// one for a previously unseen thread). A no-op when `thread` is
    /// already current.
    pub fn switch_thread(&mut self, thread: u32) {
        if thread == self.current_thread {
            return;
        }
        let previous = std::mem::take(&mut self.stack);
        self.parked_stacks.insert(self.current_thread, previous);
        self.stack = self.parked_stacks.remove(&thread).unwrap_or_default();
        self.current_thread = thread;
    }

    /// The context currently on top of the cursor stack (root if empty).
    pub fn current(&self) -> ContextId {
        self.stack.last().copied().unwrap_or(ContextId::ROOT)
    }

    /// Current call depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Enters `func` from the current context, creating a child context
    /// on first visit. Returns the entered context.
    pub fn enter(&mut self, func: FunctionId) -> ContextId {
        self.enter_with(func, false)
    }

    /// Enters an opaque system-call context named `func`.
    pub fn enter_syscall(&mut self, func: FunctionId) -> ContextId {
        self.enter_with(func, true)
    }

    fn enter_with(&mut self, func: FunctionId, is_syscall: bool) -> ContextId {
        let cur = self.current();
        let ctx = if self.stack.len() >= Self::MAX_DEPTH {
            cur
        } else if self.nodes[cur.index()].func == Some(func) {
            // Fold direct self-recursion into the same context.
            cur
        } else if let Some(&child) = self.nodes[cur.index()]
            .children
            .iter()
            .find(|&&c| self.nodes[c.index()].func == Some(func))
        {
            child
        } else {
            let id = ContextId(u32::try_from(self.nodes.len()).expect("context count fits u32"));
            self.nodes.push(ContextNode {
                func: Some(func),
                parent: Some(cur),
                children: Vec::new(),
                calls: 0,
                costs: CostVec::new(),
                is_syscall,
            });
            self.nodes[cur.index()].children.push(id);
            id
        };
        self.nodes[ctx.index()].calls += 1;
        self.stack.push(ctx);
        ctx
    }

    /// Leaves the current context (no-op at the root).
    pub fn leave(&mut self) {
        self.stack.pop();
    }

    /// Borrows a node.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn node(&self, ctx: ContextId) -> &ContextNode {
        &self.nodes[ctx.index()]
    }

    /// Mutable cost access for the current context.
    pub fn current_costs_mut(&mut self) -> &mut CostVec {
        let cur = self.current();
        &mut self.nodes[cur.index()].costs
    }

    /// Mutable cost access for an arbitrary context.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range.
    pub fn costs_mut(&mut self, ctx: ContextId) -> &mut CostVec {
        &mut self.nodes[ctx.index()].costs
    }

    /// Number of contexts, including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Iterates over every `(id, node)` pair, root first.
    pub fn iter(&self) -> impl Iterator<Item = (ContextId, &ContextNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| {
            (
                ContextId(u32::try_from(i).expect("context count fits u32")),
                n,
            )
        })
    }

    /// The call-path label of `ctx`, e.g. `main->A->D`.
    pub fn path_label(&self, ctx: ContextId, symbols: &SymbolTable) -> String {
        let mut parts = Vec::new();
        let mut cursor = Some(ctx);
        while let Some(c) = cursor {
            let node = self.node(c);
            if let Some(f) = node.func {
                parts.push(
                    symbols
                        .get_name(f)
                        .map_or_else(|| f.to_string(), str::to_owned),
                );
            }
            cursor = node.parent;
        }
        parts.reverse();
        if parts.is_empty() {
            "<root>".to_owned()
        } else {
            parts.join("->")
        }
    }

    /// Sums exclusive costs over the entire sub-tree rooted at `ctx`
    /// (the paper's *inclusive* cost of computation for a merged node).
    pub fn inclusive_costs(&self, ctx: ContextId) -> CostVec {
        let mut total = self.node(ctx).costs;
        let mut work: Vec<ContextId> = self.node(ctx).children.clone();
        while let Some(c) = work.pop() {
            total += self.node(c).costs;
            work.extend(self.node(c).children.iter().copied());
        }
        total
    }
}

/// Equality compares the persistent tree only — cursor state (stack,
/// parked per-thread stacks, current thread) is transient replay
/// machinery that `serde` already skips, so two trees are equal exactly
/// when their serialized forms are.
impl PartialEq for CallTree {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes
    }
}

impl Eq for CallTree {}

impl Default for CallTree {
    fn default() -> Self {
        CallTree::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(raw: u32) -> FunctionId {
        FunctionId::from_raw(raw)
    }

    #[test]
    fn same_path_reuses_context() {
        let mut tree = CallTree::new();
        let a1 = tree.enter(fid(0));
        tree.leave();
        let a2 = tree.enter(fid(0));
        tree.leave();
        assert_eq!(a1, a2);
        assert_eq!(tree.node(a1).calls, 2);
        assert_eq!(tree.len(), 2);
    }

    #[test]
    fn different_paths_create_distinct_contexts() {
        // D called from B and from C gets two contexts (paper's D1/D2).
        let mut tree = CallTree::new();
        tree.enter(fid(0)); // main
        tree.enter(fid(1)); // B
        let d1 = tree.enter(fid(3)); // D via B
        tree.leave();
        tree.leave();
        tree.enter(fid(2)); // C
        let d2 = tree.enter(fid(3)); // D via C
        assert_ne!(d1, d2);
        assert_eq!(tree.node(d1).func, tree.node(d2).func);
    }

    #[test]
    fn self_recursion_folds() {
        let mut tree = CallTree::new();
        let a = tree.enter(fid(0));
        let a_again = tree.enter(fid(0));
        assert_eq!(a, a_again);
        assert_eq!(tree.node(a).calls, 2);
        assert_eq!(tree.depth(), 2);
        tree.leave();
        tree.leave();
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn costs_attribute_to_current_context() {
        let mut tree = CallTree::new();
        let a = tree.enter(fid(0));
        tree.current_costs_mut().ir += 5;
        let b = tree.enter(fid(1));
        tree.current_costs_mut().ir += 7;
        tree.leave();
        tree.current_costs_mut().ir += 1;
        tree.leave();
        assert_eq!(tree.node(a).costs.ir, 6);
        assert_eq!(tree.node(b).costs.ir, 7);
    }

    #[test]
    fn inclusive_costs_sum_subtree() {
        let mut tree = CallTree::new();
        let a = tree.enter(fid(0));
        tree.current_costs_mut().ir += 1;
        tree.enter(fid(1));
        tree.current_costs_mut().ir += 10;
        tree.enter(fid(2));
        tree.current_costs_mut().ir += 100;
        tree.leave();
        tree.leave();
        tree.leave();
        assert_eq!(tree.inclusive_costs(a).ir, 111);
        assert_eq!(tree.inclusive_costs(ContextId::ROOT).ir, 111);
    }

    #[test]
    fn path_label_renders_chain() {
        let mut symbols = SymbolTable::new();
        let main = symbols.intern("main");
        let a = symbols.intern("A");
        let mut tree = CallTree::new();
        tree.enter(main);
        let ctx = tree.enter(a);
        assert_eq!(tree.path_label(ctx, &symbols), "main->A");
        assert_eq!(tree.path_label(ContextId::ROOT, &symbols), "<root>");
    }

    #[test]
    fn depth_cap_folds_into_current() {
        let mut tree = CallTree::new();
        for i in 0..(CallTree::MAX_DEPTH + 10) {
            // Alternate two functions so self-recursion folding doesn't kick in.
            tree.enter(fid((i % 2) as u32));
        }
        assert!(tree.len() <= CallTree::MAX_DEPTH + 2);
        assert_eq!(tree.depth(), CallTree::MAX_DEPTH + 10);
    }

    #[test]
    fn leave_at_root_is_noop() {
        let mut tree = CallTree::new();
        tree.leave();
        assert_eq!(tree.current(), ContextId::ROOT);
    }
}
