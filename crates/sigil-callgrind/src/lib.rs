//! Callgrind-like profiling substrate.
//!
//! The original Sigil is built *on top of* Callgrind: "Callgrind captures
//! a calltree of the running programs and also performs on-the-fly cache
//! simulations … It maintains costs for each function in the call tree"
//! and "Sigil hooks into Callgrind to identify function names, obtain
//! addresses and count operations" (IISWC'13 §III).
//!
//! This crate reproduces that substrate:
//!
//! * [`calltree`] — a context-sensitive calltree: costs are kept "for
//!   functions called through different contexts" separately (the paper's
//!   `D1`/`D2` nodes in Fig. 2 and `conv_gen(1)` in Fig. 9);
//! * [`costs`] — per-context cost vectors (instructions, op mix, memory
//!   traffic, cache misses, branch mispredictions);
//! * [`cache`] — a two-level set-associative LRU data-cache simulation;
//! * [`branch`] — a bimodal branch predictor;
//! * [`cycle`] — Callgrind's cycle-estimation formula
//!   (`CEst = Ir + 10·Bm + 10·L1m + 100·LLm`), the source of the `t_sw`
//!   estimate used by the partitioning heuristic;
//! * [`profiler`] — [`CallgrindProfiler`], an
//!   [`sigil_trace::ExecutionObserver`] tying it all together;
//! * [`output`] — flat-profile text rendering.
//!
//! # Example
//!
//! ```
//! use sigil_callgrind::{CallgrindConfig, CallgrindProfiler};
//! use sigil_trace::{Engine, OpClass};
//!
//! let mut engine = Engine::new(CallgrindProfiler::new(CallgrindConfig::default()));
//! let main = engine.symbols_mut().intern("main");
//! engine.call(main);
//! engine.op(OpClass::IntArith, 100);
//! engine.write(0x1000, 64);
//! engine.ret();
//! let (profiler, symbols) = engine.finish_with_symbols();
//! let profile = profiler.into_profile(symbols);
//! let main_row = profile.function_totals().into_iter()
//!     .find(|row| row.name == "main").unwrap();
//! assert_eq!(main_row.costs.ops_total(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod cache;
pub mod calltree;
pub mod costs;
pub mod cycle;
pub mod output;
pub mod profiler;
pub mod stackdist;

pub use branch::BranchPredictor;
pub use cache::{CacheConfig, CacheHierarchy, CacheSim};
pub use calltree::{CallTree, ContextId};
pub use costs::CostVec;
pub use cycle::CycleModel;
pub use profiler::{CallgrindConfig, CallgrindProfile, CallgrindProfiler, FunctionRow};
