//! Model-based cross-validation of the Fenwick-tree stack-distance
//! implementation against a naive LRU stack, and against the
//! set-associative cache simulator configured as fully associative.

use proptest::prelude::*;
use sigil_callgrind::stackdist::ReuseDistanceObserver;
use sigil_callgrind::{CacheConfig, CacheSim};

/// Naive O(n) LRU stack: distance = position in the move-to-front list.
#[derive(Default)]
struct NaiveStack {
    stack: Vec<u64>,
}

impl NaiveStack {
    fn observe(&mut self, line: u64) -> Option<u64> {
        match self.stack.iter().position(|&l| l == line) {
            Some(pos) => {
                self.stack.remove(pos);
                self.stack.insert(0, line);
                Some(pos as u64)
            }
            None => {
                self.stack.insert(0, line);
                None
            }
        }
    }
}

fn line_sequence() -> impl Strategy<Value = Vec<u64>> {
    // Mix of tight loops (small alphabet) and wider sweeps.
    prop::collection::vec(0u64..48, 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fenwick_matches_naive_stack(lines in line_sequence()) {
        let mut fast = ReuseDistanceObserver::new(64);
        let mut naive = NaiveStack::default();
        for &line in &lines {
            prop_assert_eq!(fast.observe_line(line), naive.observe(line), "line {}", line);
        }
    }

    #[test]
    fn distances_predict_fully_associative_lru_misses(
        lines in line_sequence(),
        capacity_pow in 1u32..6,
    ) {
        let capacity = 1u64 << capacity_pow; // 2..32 lines
        // A fully associative LRU cache with `capacity` lines: 1 set.
        let mut cache = CacheSim::new(CacheConfig {
            size: 64 * capacity as u32,
            assoc: capacity as u32,
            line_size: 64,
        });
        let mut exact_misses = 0u64;
        let mut observer = ReuseDistanceObserver::new(64);
        for &line in &lines {
            let dist = observer.observe_line(line);
            let predicted_miss = match dist {
                None => true,
                Some(d) => d >= capacity,
            };
            let actual_miss = cache.touch_line(line);
            prop_assert_eq!(
                predicted_miss, actual_miss,
                "line {} distance {:?} capacity {}", line, dist, capacity
            );
            if actual_miss {
                exact_misses += 1;
            }
        }
        // The bucketed histogram's miss_ratio is a conservative
        // (over-)estimate of the exact ratio.
        let exact_ratio = exact_misses as f64 / lines.len() as f64;
        let bucketed = observer.histogram().miss_ratio(capacity);
        prop_assert!(bucketed >= exact_ratio - 1e-9);
    }
}
