//! Property tests: cost-accounting invariants of the Callgrind-like
//! profiler under random traces.

use proptest::prelude::*;
use sigil_callgrind::{CallgrindConfig, CallgrindProfiler, CostVec};
use sigil_trace::{Engine, OpClass};

#[derive(Debug, Clone)]
enum Step {
    Call(u8),
    Return,
    Read(u32, u8),
    Write(u32, u8),
    Ops(u8, u8),
    Branch(u8, bool),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..5).prop_map(Step::Call),
        Just(Step::Return),
        (any::<u32>(), 1u8..16).prop_map(|(a, s)| Step::Read(a, s)),
        (any::<u32>(), 1u8..16).prop_map(|(a, s)| Step::Write(a, s)),
        (0u8..4, 1u8..40).prop_map(|(c, n)| Step::Ops(c, n)),
        (any::<u8>(), any::<bool>()).prop_map(|(s, t)| Step::Branch(s, t)),
    ]
}

fn run(steps: &[Step]) -> (sigil_callgrind::CallgrindProfile, ExpectedTotals) {
    let mut engine = Engine::new(CallgrindProfiler::new(CallgrindConfig::default()));
    let fns: Vec<_> = (0..5)
        .map(|i| engine.symbols_mut().intern(&format!("f{i}")))
        .collect();
    let main = engine.symbols_mut().intern("main");
    engine.call(main);
    let mut depth = 0usize;
    let mut expected = ExpectedTotals::default();
    for step in steps {
        match *step {
            Step::Call(f) => {
                if depth < 30 {
                    engine.call(fns[f as usize % fns.len()]);
                    depth += 1;
                    expected.calls += 1;
                }
            }
            Step::Return => {
                if depth > 0 {
                    engine.ret();
                    depth -= 1;
                }
            }
            Step::Read(addr, size) => {
                engine.read(u64::from(addr), u32::from(size));
                expected.reads += 1;
                expected.bytes_read += u64::from(size);
            }
            Step::Write(addr, size) => {
                engine.write(u64::from(addr), u32::from(size));
                expected.writes += 1;
                expected.bytes_written += u64::from(size);
            }
            Step::Ops(class, count) => {
                engine.op(OpClass::ALL[class as usize], u32::from(count));
                expected.ops += u64::from(count);
            }
            Step::Branch(site, taken) => {
                engine.branch(u64::from(site), taken);
                expected.branches += 1;
            }
        }
    }
    while depth > 0 {
        engine.ret();
        depth -= 1;
    }
    engine.ret();
    let (profiler, symbols) = engine.finish_with_symbols();
    (profiler.into_profile(symbols), expected)
}

#[derive(Debug, Default, Clone, Copy)]
struct ExpectedTotals {
    calls: u64,
    reads: u64,
    bytes_read: u64,
    writes: u64,
    bytes_written: u64,
    ops: u64,
    branches: u64,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn totals_conserve_event_counts(steps in prop::collection::vec(step_strategy(), 0..250)) {
        let (profile, expected) = run(&steps);
        let total: CostVec = profile.total_costs();
        prop_assert_eq!(total.reads, expected.reads);
        prop_assert_eq!(total.bytes_read, expected.bytes_read);
        prop_assert_eq!(total.writes, expected.writes);
        prop_assert_eq!(total.bytes_written, expected.bytes_written);
        prop_assert_eq!(total.ops_total(), expected.ops);
        prop_assert_eq!(total.branches, expected.branches);
    }

    #[test]
    fn misses_never_exceed_accesses(steps in prop::collection::vec(step_strategy(), 0..250)) {
        let (profile, _) = run(&steps);
        for (_, node) in profile.tree.iter() {
            let c = node.costs;
            // A 15-byte access can straddle a line: at most 2 line
            // touches per access.
            prop_assert!(c.l1_read_misses <= 2 * c.reads);
            prop_assert!(c.l1_write_misses <= 2 * c.writes);
            prop_assert!(c.ll_read_misses <= c.l1_read_misses);
            prop_assert!(c.ll_write_misses <= c.l1_write_misses);
            prop_assert!(c.mispredicts <= c.branches);
        }
    }

    #[test]
    fn function_totals_partition_tree_costs(steps in prop::collection::vec(step_strategy(), 0..250)) {
        let (profile, _) = run(&steps);
        let from_rows: u64 = profile.function_totals().iter().map(|r| r.costs.ir).sum();
        prop_assert_eq!(from_rows, profile.total_costs().ir);
        let calls_from_rows: u64 = profile.function_totals().iter().map(|r| r.calls).sum();
        let calls_from_tree: u64 = profile.tree.iter().map(|(_, n)| n.calls).sum();
        prop_assert_eq!(calls_from_rows, calls_from_tree);
    }

    #[test]
    fn cycles_dominate_ir(steps in prop::collection::vec(step_strategy(), 0..250)) {
        let (profile, _) = run(&steps);
        prop_assert!(profile.total_cycles() >= profile.total_costs().ir);
    }
}
