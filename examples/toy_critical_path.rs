//! The paper's Figure 3 walkthrough: dependency chains with
//! non-blocking calls and the critical path of a toy program.
//!
//! `main` calls `A`; `A` calls `C` and produces data; after `C` returns,
//! control re-enters `A` (a *second fragment node* for the same call);
//! `D` consumes data from `A`, and later a link from `C` to `D` pulls
//! `D` onto the critical path — exactly the sequence of updates the
//! paper steps through.
//!
//! ```text
//! cargo run --example toy_critical_path
//! ```

use sigil::analysis::critical_path::CriticalPath;
use sigil::core::{SigilConfig, SigilProfiler};
use sigil::trace::{Engine, OpClass};

fn main() {
    let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default().with_events()));
    engine.scoped_named("main", |e| {
        e.scoped_named("A", |e| {
            e.op(OpClass::IntArith, 10); // A's first fragment
            e.scoped_named("C", |e| {
                e.op(OpClass::IntArith, 34);
                e.write(0x300, 8); // C → D link, established later
            });
            // Control re-enters A: a separate fragment node, ordered
            // after A's first fragment.
            e.op(OpClass::IntArith, 18);
            e.write(0x200, 8); // A → D link
        });
        e.scoped_named("D", |e| {
            e.read(0x200, 8); // consume from A
            e.op(OpClass::IntArith, 12);
            e.read(0x300, 8); // consume from C: critical path now includes D
            e.op(OpClass::IntArith, 13);
        });
    });
    let (profiler, symbols) = engine.finish_with_symbols();
    let profile = profiler.into_profile(symbols);

    let cp = CriticalPath::from_profile(&profile).expect("event recording enabled");
    println!("serial length : {} ops", cp.serial_ops);
    println!("critical path : {} ops", cp.length_ops);
    println!(
        "max function-level parallelism: {:.2}x",
        cp.max_parallelism()
    );
    println!("\nfragments on the critical path:");
    for frag in &cp.path {
        println!(
            "  {:<12} self = {:>3} ops, finish = {:>4}",
            profile
                .symbols()
                .get_name(
                    profile
                        .callgrind
                        .tree
                        .node(frag.ctx)
                        .func
                        .expect("named fragment")
                )
                .unwrap_or("?"),
            frag.self_ops,
            frag.finish
        );
    }

    let names = cp.function_names(&profile);
    println!("\npath: {}", names.join(" -> "));
    assert!(
        names.contains(&"D".to_owned()),
        "the C→D link must pull D onto the critical path"
    );
    assert!(
        names.contains(&"C".to_owned()),
        "the path runs through C, the longer branch"
    );
}
