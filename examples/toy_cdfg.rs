//! The paper's Figures 1 & 2 walkthrough: a toy program whose control
//! data-flow graph is built, exported to Graphviz, and partitioned by
//! merging function sub-trees.
//!
//! The toy calltree is `main → {A → {C, D}, B → D}`: function `D` is
//! called from two contexts (the paper's `D1`/`D2` split), and `C`
//! produces data consumed both inside A's sub-tree (absorbed when A is
//! merged) and outside it (charged to the merged node).
//!
//! ```text
//! cargo run --example toy_cdfg
//! ```

use sigil::analysis::dot::to_dot;
use sigil::analysis::inclusive::inclusive_table;
use sigil::analysis::partition::{trim_calltree, PartitionConfig};
use sigil::analysis::Cdfg;
use sigil::core::{SigilConfig, SigilProfiler};
use sigil::trace::{Engine, OpClass};

fn main() {
    let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
    engine.scoped_named("main", |e| {
        e.scoped_named("A", |e| {
            e.op(OpClass::IntArith, 400);
            e.scoped_named("C", |e| {
                e.op(OpClass::IntArith, 2000);
                e.write(0x100, 16); // later consumed by D2 (outside A)
                e.write(0x200, 8); // consumed by D1 (inside A)
            });
            e.scoped_named("D", |e| {
                e.read(0x200, 8);
                e.op(OpClass::IntArith, 900);
            });
        });
        e.scoped_named("B", |e| {
            e.op(OpClass::IntArith, 300);
            e.scoped_named("D", |e| {
                e.read(0x100, 16);
                e.op(OpClass::IntArith, 900);
            });
        });
    });
    let (profiler, symbols) = engine.finish_with_symbols();
    let profile = profiler.into_profile(symbols);

    // Figure 1: the control data-flow graph.
    let cdfg = Cdfg::from_profile(&profile);
    println!("== Figure 1: control data-flow graph (Graphviz) ==");
    println!("{}", to_dot(&cdfg));

    // Figure 2: merging A's sub-tree discards the internal C→D1 edge and
    // accumulates the crossing C→D2 edge into A's communication cost.
    let inclusive = inclusive_table(&cdfg);
    let a = cdfg
        .nodes()
        .iter()
        .find(|n| n.name == "A")
        .expect("A profiled");
    let inc = &inclusive[a.ctx.index()];
    println!("== Figure 2: merging node A with its sub-tree ==");
    println!(
        "inclusive ops = {} (A + C + D1), crossing out = {} B, crossing in = {} B",
        inc.costs.ops_total(),
        inc.comm_out_unique,
        inc.comm_in_unique
    );
    assert_eq!(inc.costs.ops_total(), 400 + 2000 + 900);
    assert_eq!(inc.comm_out_unique, 16, "only the C→D2 edge crosses");
    assert_eq!(inc.comm_in_unique, 0);

    // And the resulting accelerator candidates.
    let trimmed = trim_calltree(&profile, &PartitionConfig::default());
    println!("\n== trimmed calltree candidates ==");
    for leaf in &trimmed.leaves {
        println!(
            "  {:<6} S(be) = {:.3}, coverage = {:.1}%",
            leaf.name,
            leaf.breakeven,
            leaf.coverage * 100.0
        );
    }
}
