//! What-if offload estimation: combine the partitioning heuristic with
//! the execution model the paper's companion work used to "measure
//! overall gains with offloaded functions" (§V).
//!
//! For the chosen benchmark, take the top trimmed-calltree candidates
//! and sweep assumed accelerator speedups, printing the whole-program
//! speedup each would deliver.
//!
//! ```text
//! cargo run --release --example accelerator_whatif [benchmark]
//! ```

use sigil::analysis::breakeven::BusModel;
use sigil::analysis::partition::{trim_calltree, PartitionConfig};
use sigil::analysis::whatif::{estimate_offload, OffloadScenario};
use sigil::core::{SigilConfig, SigilProfiler};
use sigil::trace::Engine;
use sigil::workloads::{Benchmark, InputSize};

fn main() {
    let bench: Benchmark = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "blackscholes".to_owned())
        .parse()
        .unwrap_or(Benchmark::Blackscholes);

    let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
    bench.run(InputSize::SimSmall, &mut engine);
    let (profiler, symbols) = engine.finish_with_symbols();
    let profile = profiler.into_profile(symbols);

    let bus = BusModel::soc_default();
    let trimmed = trim_calltree(&profile, &PartitionConfig::default());
    let top: Vec<_> = trimmed.leaves.iter().take(3).collect();
    println!("{bench}: what-if for the top {} candidates\n", top.len());

    for candidate in &top {
        println!(
            "{} (breakeven {:.3}, coverage {:.1}%):",
            candidate.name,
            candidate.breakeven,
            candidate.coverage * 100.0
        );
        for accel in [1.0, candidate.breakeven, 2.0, 10.0, 100.0] {
            let est = estimate_offload(
                &profile,
                &[OffloadScenario {
                    ctx: candidate.ctx,
                    accel_speedup: accel,
                }],
                &bus,
            )
            .expect("single scenario is always disjoint");
            println!("  accel {accel:>8.3}x -> program {:.3}x", est.speedup());
        }
    }

    // All top candidates at once, each with a 10x accelerator.
    let scenarios: Vec<OffloadScenario> = top
        .iter()
        .map(|c| OffloadScenario {
            ctx: c.ctx,
            accel_speedup: 10.0,
        })
        .collect();
    let est = estimate_offload(&profile, &scenarios, &bus).expect("trimmed leaves are disjoint");
    println!(
        "\nall {} candidates at 10x each -> program {:.3}x",
        scenarios.len(),
        est.speedup()
    );
}
