//! Quickstart: profile a tiny hand-written trace and read the
//! classified communication back out.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sigil::core::{report, SigilConfig, SigilProfiler};
use sigil::trace::{Engine, OpClass};

fn main() {
    // 1. Create an engine whose observer is the Sigil profiler.
    let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));

    // 2. Describe an execution: main calls a producer that fills a
    //    buffer, then a consumer that reads it twice.
    let buffer = 0x1000u64;
    engine.scoped_named("main", |e| {
        e.scoped_named("produce", |e| {
            for i in 0..32 {
                e.write(buffer + i * 8, 8);
                e.op(OpClass::IntArith, 2);
            }
        });
        e.scoped_named("consume", |e| {
            for _pass in 0..2 {
                for i in 0..32 {
                    e.read(buffer + i * 8, 8);
                    e.op(OpClass::FloatArith, 4);
                }
            }
        });
    });

    // 3. Finish and inspect.
    let (profiler, symbols) = engine.finish_with_symbols();
    let profile = profiler.into_profile(symbols);

    print!("{}", report::full_report(&profile));

    let consume = profile
        .function_by_name("consume")
        .expect("consume was profiled");
    println!(
        "consume: {} unique input bytes (true read set), {} re-read bytes",
        consume.comm.input_unique_bytes, consume.comm.input_nonunique_bytes
    );
    assert_eq!(consume.comm.input_unique_bytes, 256);
    assert_eq!(consume.comm.input_nonunique_bytes, 256);
}
