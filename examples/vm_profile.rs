//! The DBI path: run an unmodified guest program on the `sigil-vm`
//! interpreter while Sigil observes it — the reproduction's analogue of
//! `valgrind --tool=sigil ./a.out`.
//!
//! ```text
//! cargo run --example vm_profile
//! ```

use sigil::core::{report, SigilConfig, SigilProfiler};
use sigil::trace::Engine;
use sigil::vm::{disasm, Interpreter};
use sigil::workloads::vm_kernels;

fn main() {
    let program = vm_kernels::dot_product(512);
    println!("== guest program (disassembly, truncated) ==");
    for line in disasm::program_to_string(&program).lines().take(24) {
        println!("{line}");
    }
    println!("...\n");

    let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default().with_reuse_mode()));
    let result = Interpreter::new(&program)
        .run(&mut engine)
        .expect("guest runs to completion");
    println!("guest returned: {result:?}\n");

    let (profiler, symbols) = engine.finish_with_symbols();
    let profile = profiler.into_profile(symbols);
    print!("{}", report::full_report(&profile));

    // The classification sees through the VM: `dot` consumed exactly the
    // two vectors `fill` produced.
    let dot = profile.function_by_name("dot").expect("dot executed");
    println!(
        "\n`dot` unique input bytes: {} (two 512-element f64 vectors = 8192)",
        dot.comm.input_unique_bytes
    );
    assert_eq!(dot.comm.input_unique_bytes, 2 * 512 * 8);
}
