//! Scheduling case study (paper §IV-C): map a workload's dependency
//! chains onto a fixed number of cores and watch the realizable speedup
//! approach the theoretical function-level-parallelism limit.
//!
//! ```text
//! cargo run --release --example schedule_explorer [benchmark]
//! ```

use sigil::analysis::critical_path::CriticalPath;
use sigil::analysis::schedule::schedule;
use sigil::core::{SigilConfig, SigilProfiler};
use sigil::trace::Engine;
use sigil::workloads::{Benchmark, InputSize};

fn main() {
    let bench: Benchmark = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "streamcluster".to_owned())
        .parse()
        .unwrap_or(Benchmark::Streamcluster);

    let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default().with_events()));
    bench.run(InputSize::SimSmall, &mut engine);
    let (profiler, symbols) = engine.finish_with_symbols();
    let profile = profiler.into_profile(symbols);

    let limit = CriticalPath::from_profile(&profile)
        .expect("event recording enabled")
        .max_parallelism();
    println!("{bench}: theoretical function-level parallelism limit {limit:.2}x\n");
    println!(
        "{:>6} {:>10} {:>9} {:>12}",
        "cores", "makespan", "speedup", "utilization"
    );
    for cores in [1, 2, 4, 8, 16, 32] {
        let s = schedule(&profile, cores).expect("event recording enabled");
        println!(
            "{cores:>6} {:>10} {:>8.2}x {:>11.1}%",
            s.makespan,
            s.speedup(),
            s.utilization() * 100.0
        );
    }

    let s = schedule(&profile, 4).expect("event recording enabled");
    println!("\nper-core load at 4 cores:");
    for (core, load) in s.per_core_load().iter().enumerate() {
        let pct = 100.0 * *load as f64 / s.makespan.max(1) as f64;
        println!(
            "  core {core}: {:<40} {pct:5.1}%",
            "#".repeat((pct / 2.5) as usize)
        );
    }
}
