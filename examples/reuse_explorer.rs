//! Data-reuse case study (paper §IV-B): reuse-count breakdowns, the
//! per-function lifetime ranking, and ASCII lifetime histograms for the
//! vips deep-dive functions.
//!
//! ```text
//! cargo run --release --example reuse_explorer [benchmark]
//! ```

use sigil::analysis::reuse_analysis::{
    function_reuse_rows, lifetime_histogram_of, line_breakdown_percent, reuse_breakdown_percent,
};
use sigil::core::{SigilConfig, SigilProfiler};
use sigil::trace::Engine;
use sigil::workloads::{Benchmark, InputSize};

fn histogram(profile: &sigil::core::Profile, name: &str) {
    match lifetime_histogram_of(profile, name) {
        Some(hist) => {
            println!("\nreuse-lifetime histogram of `{name}` (bin = 1000 retired ops):");
            let max = hist.iter().map(|(_, c)| c).max().unwrap_or(1);
            for (bin, count) in hist.iter() {
                println!(
                    "{bin:>10} {count:>10} {}",
                    "#".repeat(((count * 40) / max) as usize)
                );
            }
        }
        None => println!("\n`{name}` has no reuse records"),
    }
}

fn main() {
    let bench: Benchmark = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "vips".to_owned())
        .parse()
        .unwrap_or(Benchmark::Vips);

    let config = SigilConfig::default().with_reuse_mode().with_line_mode(64);
    let mut engine = Engine::new(SigilProfiler::new(config));
    bench.run(InputSize::SimSmall, &mut engine);
    let (profiler, symbols) = engine.finish_with_symbols();
    let profile = profiler.into_profile(symbols);

    if let Some(pct) = reuse_breakdown_percent(&profile) {
        println!(
            "{bench}: byte reuse  0: {:.1}% | 1-9: {:.1}% | >9: {:.1}%",
            pct[0], pct[1], pct[2]
        );
    }
    if let Some(pct) = line_breakdown_percent(&profile) {
        println!(
            "64B lines  <10: {:.1}% | <100: {:.1}% | <1k: {:.1}% | <10k: {:.1}% | >10k: {:.1}%",
            pct[0], pct[1], pct[2], pct[3], pct[4]
        );
    }

    println!("\ntop functions by reused bytes:");
    if let Some(rows) = function_reuse_rows(&profile) {
        for row in rows.iter().take(8) {
            println!(
                "  {:<24} reused {:>9} B of {:>9} B, avg lifetime {:>9.0} ops",
                row.label, row.reused_bytes, row.total_bytes, row.avg_lifetime
            );
        }
    }

    if bench == Benchmark::Vips {
        // The paper's Figures 10 and 11.
        histogram(&profile, "conv_gen");
        histogram(&profile, "imb_XYZ2Lab");
    }
}
