//! HW/SW partitioning case study (paper §IV-A): profile a benchmark,
//! trim its calltree, and list accelerator candidates ranked by
//! breakeven speedup.
//!
//! ```text
//! cargo run --release --example partition_explorer [benchmark]
//! ```

use sigil::analysis::partition::{rank_functions, trim_calltree, PartitionConfig};
use sigil::core::{SigilConfig, SigilProfiler};
use sigil::trace::Engine;
use sigil::workloads::{Benchmark, InputSize};

fn main() {
    let bench: Benchmark = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "dedup".to_owned())
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("{e}; using dedup");
            Benchmark::Dedup
        });

    let mut engine = Engine::new(SigilProfiler::new(SigilConfig::default()));
    bench.run(InputSize::SimSmall, &mut engine);
    let (profiler, symbols) = engine.finish_with_symbols();
    let profile = profiler.into_profile(symbols);

    let config = PartitionConfig::default();
    let trimmed = trim_calltree(&profile, &config);
    println!(
        "{bench}: {} candidate leaves cover {:.1}% of estimated execution time\n",
        trimmed.leaves.len(),
        trimmed.coverage * 100.0
    );
    println!(
        "{:>9} {:>12} {:>8} {:>12} {:>12}  candidate",
        "S(be)", "t_sw (cyc)", "cover", "in uniq B", "out uniq B"
    );
    for leaf in &trimmed.leaves {
        println!(
            "{:>9.3} {:>12} {:>7.1}% {:>12} {:>12}  {}",
            leaf.breakeven,
            leaf.inclusive_cycles,
            leaf.coverage * 100.0,
            leaf.comm_in_unique,
            leaf.comm_out_unique,
            leaf.name
        );
    }

    println!("\nall functions by breakeven speedup (a designer would start at the top):");
    for row in rank_functions(&profile, &config) {
        println!("  {:<36} {:>8.3}", row.name, row.breakeven);
    }
}
